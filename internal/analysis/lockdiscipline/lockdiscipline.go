// Package lockdiscipline enforces the broker's reentrancy contract: no
// Peer send, transport call or user Handler callback may run while a
// guarded mutex is held. Every broker entry point follows the
// lock-mutate-unlock-send shape — decisions are made and recorded under
// Broker.mu, but the sends they produce go out after Unlock, because a
// synchronous Peer send re-enters the neighbor (or, in-process, this very
// broker: handlers are free to call back into Subscribe/Publish), and a
// send made under the mutex deadlocks or violates the pooled-buffer
// Handler contract. This is the precondition audit for the ROADMAP's
// sharded/RCU matching index: the sharding refactor can only move the
// mutex if no send secretly depends on it.
//
// A mutex opts into checking with a `// cosmoslint:guards` annotation on
// its field (or package-level var) declaration. The analyzer then walks
// every function in the package, tracking which guarded mutexes are held
// at each statement (Lock/RLock acquire; Unlock/RUnlock release; a branch
// that unlocks and returns does not release the fall-through path), and
// flags any call made while one is held that
//
//   - is a Peer protocol send (AdvertFrom, UnadvertFrom, PropagateFrom,
//     RetractFrom, RouteFrom),
//   - invokes a Handler-typed value,
//   - calls into a transport package, or
//   - calls a same-package function that transitively reaches any of the
//     above (static callgraph, context-insensitive).
//
// The callgraph is per-package and the held-state analysis is a linear
// over-approximation; a genuinely safe site (e.g. a send on a mutex the
// callee provably releases first) is annotated `//lint:lockdiscipline
// <reason>`.
//
// The analyzer also enforces the snapshot write-once contract of the
// RCU-style matching index. A type opts in with `// cosmoslint:snapshot`
// on its declaration; any assignment that writes through a value of a
// snapshot type (field set, map insert, slice-element store, append
// rebind) is flagged unless the chain is rooted at a local variable that
// the same function constructed from a snapshot composite literal — the
// builder pattern: populate a fresh value, then publish it with one
// atomic store. Calls such as ss.prune.Store(...) are method calls, not
// assignments, so the deliberate atomic-cell exceptions inside snapshot
// types stay quiet by construction.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "flag Peer sends, transport calls and Handler callbacks reachable " +
		"while a cosmoslint:guards-annotated mutex is held, and writes to " +
		"cosmoslint:snapshot types outside their builders",
	Run: run,
}

var peerMethods = map[string]bool{
	"AdvertFrom":    true,
	"UnadvertFrom":  true,
	"PropagateFrom": true,
	"RetractFrom":   true,
	"RouteFrom":     true,
}

func run(pass *analysis.Pass) error {
	checkSnapshotWrites(pass)
	guarded := findGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	c := &checker{pass: pass, guarded: guarded, decls: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
				}
			}
		}
	}
	c.buildReachability()
	for _, fn := range c.sortedFns() {
		c.walkStmts(c.decls[fn].Body.List, map[*types.Var]token.Position{})
	}
	return nil
}

// findGuarded collects the mutex fields and package vars annotated with
// `// cosmoslint:guards`.
func findGuarded(pass *analysis.Pass) map[*types.Var]bool {
	guarded := map[*types.Var]bool{}
	mark := func(names []*ast.Ident, doc, line *ast.CommentGroup) {
		if !hasGuardsAnnotation(doc) && !hasGuardsAnnotation(line) {
			return
		}
		for _, name := range names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				guarded[v] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.StructType:
				for _, field := range x.Fields.List {
					mark(field.Names, field.Doc, field.Comment)
				}
			case *ast.ValueSpec:
				mark(x.Names, x.Doc, x.Comment)
			}
			return true
		})
	}
	return guarded
}

func hasGuardsAnnotation(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, "cosmoslint:guards") {
			return true
		}
	}
	return false
}

type checker struct {
	pass    *analysis.Pass
	guarded map[*types.Var]bool
	decls   map[*types.Func]*ast.FuncDecl
	// reaches[fn] describes the sink fn can reach ("" = none).
	reaches map[*types.Func]string
}

// sortedFns returns the package's analyzed functions in source order, so
// every pass over the callgraph is deterministic — the chain descriptions
// the fixpoint records must not depend on map iteration order.
func (c *checker) sortedFns() []*types.Func {
	fns := make([]*types.Func, 0, len(c.decls))
	for fn := range c.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return c.decls[fns[i]].Pos() < c.decls[fns[j]].Pos() })
	return fns
}

// buildReachability computes, for every function in the package, whether
// it can transitively reach a sink (fixpoint over the static callgraph).
func (c *checker) buildReachability() {
	c.reaches = map[*types.Func]string{}
	callees := map[*types.Func][]*types.Func{}
	fns := c.sortedFns()
	for _, fn := range fns {
		fd := c.decls[fn]
		if desc := c.directSink(fd.Body); desc != "" {
			c.reaches[fn] = desc
		}
		var cs []*types.Func
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if g := c.staticCallee(call); g != nil && c.decls[g] != nil {
					cs = append(cs, g)
				}
			}
			return true
		})
		callees[fn] = cs
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if c.reaches[fn] != "" {
				continue
			}
			for _, g := range callees[fn] {
				if d := c.reaches[g]; d != "" {
					c.reaches[fn] = g.Name() + " → " + d
					changed = true
					break
				}
			}
		}
	}
}

// directSink scans a body for a sink call and describes the first one.
func (c *checker) directSink(body *ast.BlockStmt) string {
	desc := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		desc = c.sinkDesc(call)
		return desc == ""
	})
	return desc
}

// sinkDesc classifies a call as a sink ("" if not one).
func (c *checker) sinkDesc(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && peerMethods[sel.Sel.Name] {
		// Only method calls count (a local function that happens to share
		// a protocol name would need a receiver to be confused here).
		if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return "Peer send " + sel.Sel.Name
		}
	}
	if t := c.pass.TypeOf(call.Fun); t != nil {
		if named, ok := t.(*types.Named); ok {
			if _, isSig := named.Underlying().(*types.Signature); isSig && strings.Contains(named.Obj().Name(), "Handler") {
				return "callback through " + named.Obj().Name()
			}
		}
	}
	if fn := c.staticCallee(call); fn != nil && fn.Pkg() != nil && fn.Pkg() != c.pass.Pkg {
		if strings.Contains(fn.Pkg().Path(), "transport") {
			return "transport call " + fn.Name()
		}
	}
	return ""
}

func (c *checker) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// lockOp decodes recv.mu.Lock()-shaped statements on guarded mutexes,
// returning the mutex and +1 (acquire) / -1 (release); 0 otherwise.
func (c *checker) lockOp(call *ast.CallExpr) (*types.Var, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	dir := 0
	switch sel.Sel.Name {
	case "Lock", "RLock":
		dir = 1
	case "Unlock", "RUnlock":
		dir = -1
	default:
		return nil, 0
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	var muObj types.Object
	if ok {
		muObj = c.pass.ObjectOf(muSel.Sel)
	} else if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
		muObj = c.pass.ObjectOf(id)
	}
	if v, isVar := muObj.(*types.Var); isVar && c.guarded[v] {
		return v, dir
	}
	return nil, 0
}

// walkStmts runs the held-mutex dataflow over a statement list, reporting
// calls that (can) reach sinks while a guarded mutex is held. The held map
// carries the Lock site for the message. It returns the state at the end
// of the list.
func (c *checker) walkStmts(stmts []ast.Stmt, held map[*types.Var]token.Position) map[*types.Var]token.Position {
	for _, st := range stmts {
		held = c.walkStmt(st, held)
	}
	return held
}

func (c *checker) walkStmt(st ast.Stmt, held map[*types.Var]token.Position) map[*types.Var]token.Position {
	switch x := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if mu, dir := c.lockOp(call); mu != nil {
				held = clone(held)
				if dir > 0 {
					held[mu] = c.pass.Fset.Position(call.Pos())
				} else {
					delete(held, mu)
				}
				return held
			}
		}
		c.checkCalls(x, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held to the end of the
		// function, which the no-removal default already models. Other
		// deferred calls run at return time with an unknowable held
		// state; they are not checked.
		return held
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's critical section —
		// its body is checked from an empty held state.
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, map[*types.Var]token.Position{})
		}
	case *ast.BlockStmt:
		return c.walkStmts(x.List, clone(held))
	case *ast.IfStmt:
		if x.Init != nil {
			held = c.walkStmt(x.Init, held)
		}
		c.checkCalls(x.Cond, held)
		bodyEnd := c.walkStmts(x.Body.List, clone(held))
		states := [][2]any{}
		if !terminates(x.Body.List) {
			states = append(states, [2]any{bodyEnd, true})
		}
		if x.Else != nil {
			elseEnd := c.walkStmt(x.Else, clone(held))
			if !stmtTerminates(x.Else) {
				states = append(states, [2]any{elseEnd, true})
			}
		} else {
			states = append(states, [2]any{held, true})
		}
		// Fall-through state: a mutex is held only if every non-returning
		// path still holds it (the unlock-and-return branch pattern).
		if len(states) == 0 {
			return held // every branch returns; successor is unreachable
		}
		merged := clone(states[0][0].(map[*types.Var]token.Position))
		for _, s := range states[1:] {
			other := s[0].(map[*types.Var]token.Position)
			for mu := range merged {
				if _, ok := other[mu]; !ok {
					delete(merged, mu)
				}
			}
		}
		return merged
	case *ast.ForStmt:
		if x.Init != nil {
			held = c.walkStmt(x.Init, held)
		}
		if x.Cond != nil {
			c.checkCalls(x.Cond, held)
		}
		c.walkStmts(x.Body.List, clone(held))
		return held
	case *ast.RangeStmt:
		c.checkCalls(x.X, held)
		c.walkStmts(x.Body.List, clone(held))
		return held
	case *ast.SwitchStmt:
		if x.Init != nil {
			held = c.walkStmt(x.Init, held)
		}
		if x.Tag != nil {
			c.checkCalls(x.Tag, held)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, clone(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, clone(held))
			}
		}
		return held
	case *ast.SelectStmt:
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				c.walkStmts(cc.Body, clone(held))
			}
		}
		return held
	default:
		c.checkCalls(st, held)
	}
	return held
}

// checkCalls reports every sink (or sink-reaching same-package call)
// under node while held is non-empty.
func (c *checker) checkCalls(node ast.Node, held map[*types.Var]token.Position) {
	if len(held) == 0 || node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if mu, _ := c.lockOp(call); mu != nil {
			return true // nested lock ops are handled at statement level
		}
		mu, lockPos := anyHeld(held)
		if desc := c.sinkDesc(call); desc != "" {
			c.pass.Reportf(call.Pos(), "%s while %s is held (Lock at line %d): sends and callbacks re-enter brokers — move it after Unlock, or annotate //lint:lockdiscipline", desc, mu.Name(), lockPos.Line)
			return true
		}
		if g := c.staticCallee(call); g != nil && c.decls[g] != nil {
			if d := c.reaches[g]; d != "" {
				c.pass.Reportf(call.Pos(), "call to %s while %s is held (Lock at line %d) can reach a send (%s): sends and callbacks re-enter brokers — move it after Unlock, or annotate //lint:lockdiscipline", g.Name(), mu.Name(), lockPos.Line, d)
			}
		}
		return true
	})
}

func anyHeld(held map[*types.Var]token.Position) (*types.Var, token.Position) {
	var best *types.Var
	var bestPos token.Position
	for mu, pos := range held {
		if best == nil || pos.Offset < bestPos.Offset {
			best, bestPos = mu, pos
		}
	}
	return best, bestPos
}

func clone(m map[*types.Var]token.Position) map[*types.Var]token.Position {
	out := make(map[*types.Var]token.Position, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// checkSnapshotWrites enforces the write-once contract on types annotated
// `// cosmoslint:snapshot`: after construction, a snapshot value is only
// ever read. Writes through a snapshot-typed expression are allowed solely
// when the chain is rooted at a local the same function created from a
// snapshot composite literal (the builder filling a fresh value before the
// atomic publish).
func checkSnapshotWrites(pass *analysis.Pass) {
	snap := findSnapshotTypes(pass)
	if len(snap) == 0 {
		return
	}
	typeOf := func(e ast.Expr) *types.TypeName {
		t := pass.TypeOf(e)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && snap[named.Obj()] {
			return named.Obj()
		}
		return nil
	}
	// snapshotTarget walks an assignment LHS. It returns the snapshot type
	// the write goes through (nil: not a snapshot write) and the chain's
	// root identifier (nil when the root is not a plain identifier).
	snapshotTarget := func(e ast.Expr) (*types.TypeName, *ast.Ident) {
		var hit *types.TypeName
		for {
			e = ast.Unparen(e)
			switch x := e.(type) {
			case *ast.SelectorExpr:
				if tn := typeOf(x.X); tn != nil && hit == nil {
					hit = tn
				}
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.Ident:
				return hit, x
			default:
				return hit, nil
			}
		}
	}
	report := func(pos token.Pos, tn *types.TypeName) {
		pass.Reportf(pos, "write through cosmoslint:snapshot type %s outside its builder: published snapshots are write-once — build a fresh value and republish, or annotate //lint:lockdiscipline", tn.Name())
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := freshSnapshotLocals(pass, fd.Body, snap)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						tn, root := snapshotTarget(lhs)
						if tn == nil {
							continue
						}
						if root != nil && fresh[pass.ObjectOf(root)] {
							continue
						}
						report(lhs.Pos(), tn)
					}
				case *ast.IncDecStmt:
					if tn, root := snapshotTarget(x.X); tn != nil && (root == nil || !fresh[pass.ObjectOf(root)]) {
						report(x.Pos(), tn)
					}
				}
				return true
			})
		}
	}
}

// findSnapshotTypes collects the named types annotated with
// `// cosmoslint:snapshot` on their declaration.
func findSnapshotTypes(pass *analysis.Pass) map[types.Object]bool {
	snap := map[types.Object]bool{}
	has := func(cgs ...*ast.CommentGroup) bool {
		for _, cg := range cgs {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if strings.Contains(c.Text, "cosmoslint:snapshot") {
					return true
				}
			}
		}
		return false
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if has(gd.Doc, ts.Doc, ts.Comment) {
					if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
						snap[obj] = true
					}
				}
			}
		}
	}
	return snap
}

// freshSnapshotLocals collects the local variables a function initializes
// from a snapshot composite literal (ds := &dirSnap{...}); writes rooted at
// those are the builder filling its own value.
func freshSnapshotLocals(pass *analysis.Pass, body *ast.BlockStmt, snap map[types.Object]bool) map[types.Object]bool {
	isSnapLit := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		cl, ok := e.(*ast.CompositeLit)
		if !ok {
			return false
		}
		t := pass.TypeOf(cl)
		if named, ok := t.(*types.Named); ok {
			return snap[named.Obj()]
		}
		return false
	}
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, rhs := range x.Rhs {
				if !isSnapLit(rhs) {
					continue
				}
				if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil {
						fresh[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range x.Values {
				if i < len(x.Names) && isSnapLit(v) {
					if obj := pass.ObjectOf(x.Names[i]); obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// terminates reports whether a statement list always transfers control
// out (return, branch, panic) at its end.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(st ast.Stmt) bool {
	switch x := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(x.List)
	case *ast.IfStmt:
		return terminates(x.Body.List) && x.Else != nil && stmtTerminates(x.Else)
	}
	return false
}
