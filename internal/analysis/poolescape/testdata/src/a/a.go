// Package a is the poolescape fixture, modeled on the route-path buffer
// pool: borrow from a sync.Pool, lend slices around, Put before exit.
// Stored/returned/goroutine-captured references are flagged; the real
// route() shape (use, clear, re-slice back into the pooled struct, Put)
// stays quiet.
package a

import "sync"

type bufs struct {
	locals []int
	hops   []int
}

var pool = sync.Pool{New: func() any { return new(bufs) }}

var sink []int

type holder struct{ kept []int }

// routeShape is the compliant pattern from Broker.route: everything the
// pool lent out is re-sliced back into the pooled struct before Put.
func routeShape(n int) int {
	b := pool.Get().(*bufs)
	locals, hops := b.locals[:0], b.hops[:0]
	for i := 0; i < n; i++ {
		locals = append(locals, i)
		hops = append(hops, 2*i)
	}
	total := 0
	for _, v := range locals {
		total += v
	}
	for _, v := range hops {
		total += v
	}
	b.locals, b.hops = locals[:0], hops[:0]
	pool.Put(b)
	return total
}

func storeInGlobal() {
	b := pool.Get().(*bufs)
	sink = b.locals // want `pooled buffer stored in package variable "sink"`
	pool.Put(b)
}

func storeInField(h *holder) {
	b := pool.Get().(*bufs)
	h.kept = b.locals // want `pooled buffer stored through a field store`
	pool.Put(b)
}

func storeInMap(m map[string][]int) {
	b := pool.Get().(*bufs)
	m["k"] = b.hops // want `pooled buffer stored through a map/slice element store`
	pool.Put(b)
}

func returned() []int {
	b := pool.Get().(*bufs)
	out := b.locals[:0]
	return out // want `pooled buffer returned from the borrowing function`
}

func sentOnChannel(ch chan []int) {
	b := pool.Get().(*bufs)
	ch <- b.locals // want `pooled buffer sent on a channel`
	pool.Put(b)
}

func goroutineCapture() {
	b := pool.Get().(*bufs)
	go func() {
		_ = len(b.locals) // want `pooled buffer "b" captured by a goroutine`
	}()
	pool.Put(b)
}

func appendedElsewhere(out [][]int) [][]int {
	b := pool.Get().(*bufs)
	out = append(out, b.locals) // want `pooled buffer appended into a non-pooled slice`
	pool.Put(b)
	return out
}

// copyOut is the sanctioned fix: copy the data, return the copy.
func copyOut() []int {
	b := pool.Get().(*bufs)
	out := make([]int, len(b.locals))
	copy(out, b.locals)
	pool.Put(b)
	return out
}

// annotated: a deliberate long-lived borrow, documented.
func annotated() []int {
	b := pool.Get().(*bufs)
	//lint:poolescape deliberate leak, buffer retired from the pool
	return b.locals
}
