// Package poolescape flags pooled buffers that escape the call that
// borrowed them. The PR 4 route path pops delivery/hop buffers from a
// sync.Pool, lends slices of them to the matchers, and returns them to the
// pool before route() exits — any reference that outlives the call (stored
// in a field, a global, a map, a channel, a goroutine closure, or returned)
// is a use-after-Put data race the moment the next route call pops the
// same buffer. This is the machine-checked half of the delivered-tuples-
// are-read-only Handler contract.
//
// Tracking is intraprocedural and flow-insensitive-by-source-order: a
// value is "pooled" when it is (derived from) the result of a
// (*sync.Pool).Get call — through type assertions, field selections,
// indexing, slicing and re-slicing, plain-variable copies, and append
// whose destination is itself pooled. A pooled value is flagged when it is
//
//   - assigned into anything that is not a local variable or another
//     pooled location (fields of non-pooled values, map/slice elements,
//     dereferences, package-level variables);
//   - appended into a non-pooled slice;
//   - sent on a channel;
//   - captured by a `go` closure;
//   - returned from the function.
//
// Deliberate exceptions carry `//lint:poolescape <reason>`.
package poolescape

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "flag sync.Pool-backed buffers escaping the borrowing call via " +
		"stored references, channel sends, goroutine captures or returns",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type state struct {
	pass    *analysis.Pass
	tracked map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	st := &state{pass: pass, tracked: map[types.Object]bool{}}
	// Two passes: the first discovers tracked objects (pool.Get results
	// and copies, in source order — a second sweep catches copies written
	// before their source textually, e.g. in loops), the second reports.
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				st.propagate(as)
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			st.checkAssign(x)
		case *ast.SendStmt:
			if st.pooled(x.Value) {
				pass.Reportf(x.Pos(), "pooled buffer sent on a channel: the receiver's reference outlives the Put (copy the data out, or annotate //lint:poolescape)")
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if st.pooled(r) {
					pass.Reportf(x.Pos(), "pooled buffer returned from the borrowing function: the caller's reference outlives the Put (copy the data out, or annotate //lint:poolescape)")
				}
			}
		case *ast.GoStmt:
			st.checkGo(x)
		case *ast.CallExpr:
			st.checkAppend(x)
		}
		return true
	})
}

// propagate records LHS objects of assignments whose RHS is pooled.
func (s *state) propagate(as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Rhs {
			if !s.pooled(as.Rhs[i]) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				if obj := s.pass.ObjectOf(id); obj != nil && isLocalVar(obj) {
					s.tracked[obj] = true
				}
			}
		}
	}
}

// checkAssign flags stores of pooled values into non-pooled, non-local
// destinations.
func (s *state) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Rhs {
		if !s.pooled(as.Rhs[i]) {
			continue
		}
		lhs := ast.Unparen(as.Lhs[i])
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			if obj := s.pass.ObjectOf(id); obj != nil && !isLocalVar(obj) {
				s.pass.Reportf(as.Pos(), "pooled buffer stored in package variable %q: the reference outlives the Put (copy the data out, or annotate //lint:poolescape)", id.Name)
			}
			continue // local copy: tracked by propagate
		}
		// Field, index or dereference store: fine only when the
		// destination root is itself pooled memory (e.g. writing a popped
		// buffer's own fields back before Put).
		if root := rootExprObj(s.pass, lhs); root != nil && s.tracked[root] {
			continue
		}
		s.pass.Reportf(as.Pos(), "pooled buffer stored through %s: the stored reference outlives the Put (copy the data out, or annotate //lint:poolescape)", describeLHS(lhs))
	}
}

// checkAppend flags append(dst, pooled...) into a non-pooled dst.
func (s *state) checkAppend(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := s.pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	if len(call.Args) < 2 || s.pooled(call.Args[0]) {
		return
	}
	for _, arg := range call.Args[1:] {
		if s.pooled(arg) {
			s.pass.Reportf(call.Pos(), "pooled buffer appended into a non-pooled slice: the element reference outlives the Put (copy the data out, or annotate //lint:poolescape)")
			return
		}
	}
}

// checkGo flags goroutine closures capturing pooled variables: the
// goroutine races the Put.
func (s *state) checkGo(g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := s.pass.ObjectOf(id); obj != nil && s.tracked[obj] {
					s.pass.Reportf(id.Pos(), "pooled buffer %q captured by a goroutine: the goroutine races the Put (copy the data out, or annotate //lint:poolescape)", id.Name)
					return false
				}
			}
			return true
		})
	}
	for _, arg := range g.Call.Args {
		if s.pooled(arg) {
			s.pass.Reportf(arg.Pos(), "pooled buffer passed to a goroutine: the goroutine races the Put (copy the data out, or annotate //lint:poolescape)")
		}
	}
}

// pooled reports whether e evaluates to (part of) a pooled buffer.
func (s *state) pooled(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := s.pass.ObjectOf(x)
		return obj != nil && s.tracked[obj]
	case *ast.CallExpr:
		if isPoolGet(s.pass, x) {
			return true
		}
		// append(pooled, ...) yields pooled memory.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := s.pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 0 {
				return s.pooled(x.Args[0])
			}
		}
		return false
	case *ast.TypeAssertExpr:
		return s.pooled(x.X)
	case *ast.SelectorExpr:
		// A field of a pooled struct is pooled memory; a method value is not.
		if sel, ok := s.pass.TypesInfo.Selections[x]; ok && sel.Kind() != types.FieldVal {
			return false
		}
		return s.pooled(x.X)
	case *ast.IndexExpr:
		return s.pooled(x.X)
	case *ast.SliceExpr:
		return s.pooled(x.X)
	case *ast.StarExpr:
		return s.pooled(x.X)
	case *ast.UnaryExpr:
		return s.pooled(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if s.pooled(el) {
				return true
			}
		}
		return false
	}
	return false
}

// isPoolGet matches calls to (*sync.Pool).Get.
func isPoolGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isLocalVar reports whether obj is a function-scoped variable (not a
// package-level var, field or parameter of another function).
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return false
	}
	return v.Parent() == nil || v.Parent() != v.Pkg().Scope()
}

func rootExprObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func describeLHS(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr:
		return "a field store"
	case *ast.IndexExpr:
		return "a map/slice element store"
	case *ast.StarExpr:
		return "a pointer dereference"
	}
	return "a store"
}
