package poolescape_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/poolescape"
)

func TestPoolEscape(t *testing.T) {
	analyzertest.Run(t, poolescape.Analyzer, "./testdata/src/a")
}
