// Package diffusion implements the optimal dynamic load-balancing diffusion
// solution of Hu & Blake (1995), which the paper's adaptive redistribution
// uses to decide how much load to shift between sibling coordinators
// (Algorithm 3) while minimizing the Euclidean norm of transferred load —
// and therefore the number of query migrations.
//
// Given a connected undirected graph over n processors with loads l_i and
// capacities proportional to weights c_i, the target load of processor i is
// t_i = c_i · Σl / Σc. The minimal-norm diffusion solution sets the flow on
// edge (i,j) to m_ij = λ_i − λ_j where λ solves the Laplacian system
// L·λ = l − t. The system is solved with conjugate gradients; the Laplacian
// is singular (constant nullspace), which CG handles because l − t sums to
// zero.
package diffusion

import (
	"fmt"
	"math"
)

// Graph is the sibling graph on which load diffuses. Edges are the pairs
// allowed to exchange load; coordinators use the complete graph over their
// children.
type Graph struct {
	N     int
	Edges [][2]int
}

// Complete returns the complete graph on n vertices.
func Complete(n int) Graph {
	g := Graph{N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.Edges = append(g.Edges, [2]int{i, j})
		}
	}
	return g
}

// Solution is a diffusion plan: Flow[e] is the load to move along edge e
// from Edges[e][0] to Edges[e][1] (negative = opposite direction).
type Solution struct {
	Graph Graph
	Flow  []float64
}

// Moves flattens the solution into a per-ordered-pair matrix m[i][j] ≥ 0 of
// load that should migrate from i to j, as Algorithm 3 consumes it.
func (s *Solution) Moves() [][]float64 {
	m := make([][]float64, s.Graph.N)
	for i := range m {
		m[i] = make([]float64, s.Graph.N)
	}
	for e, f := range s.Flow {
		i, j := s.Graph.Edges[e][0], s.Graph.Edges[e][1]
		if f > 0 {
			m[i][j] = f
		} else if f < 0 {
			m[j][i] = -f
		}
	}
	return m
}

// TotalTransfer returns Σ|m_ij|, the total load volume the plan moves.
func (s *Solution) TotalTransfer() float64 {
	var t float64
	for _, f := range s.Flow {
		t += math.Abs(f)
	}
	return t
}

// Solve computes the minimal-Euclidean-norm diffusion plan that moves loads
// to the capacity-proportional targets. caps must be positive and loads
// non-negative; both must have length g.N.
func Solve(g Graph, loads, caps []float64) (*Solution, error) {
	n := g.N
	if len(loads) != n || len(caps) != n {
		return nil, fmt.Errorf("diffusion: got %d loads, %d caps for %d vertices", len(loads), len(caps), n)
	}
	if n == 0 {
		return &Solution{Graph: g}, nil
	}
	var totalLoad, totalCap float64
	for i := 0; i < n; i++ {
		if caps[i] <= 0 {
			return nil, fmt.Errorf("diffusion: non-positive capacity %v at vertex %d", caps[i], i)
		}
		totalLoad += loads[i]
		totalCap += caps[i]
	}
	// b_i = l_i − t_i (sums to zero).
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		b[i] = loads[i] - caps[i]*totalLoad/totalCap
	}

	lambda, err := solveLaplacian(g, b)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Graph: g, Flow: make([]float64, len(g.Edges))}
	for e, ed := range g.Edges {
		sol.Flow[e] = lambda[ed[0]] - lambda[ed[1]]
	}
	return sol, nil
}

// solveLaplacian solves L·x = b by conjugate gradients, where L is the
// unweighted Laplacian of g. b must be orthogonal to the constant vector
// (it is, by construction). The solution is defined up to a constant, which
// cancels in the flows.
func solveLaplacian(g Graph, b []float64) ([]float64, error) {
	n := g.N
	deg := make([]float64, n)
	for _, e := range g.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	mul := func(x, out []float64) {
		for i := 0; i < n; i++ {
			out[i] = deg[i] * x[i]
		}
		for _, e := range g.Edges {
			out[e[0]] -= x[e[1]]
			out[e[1]] -= x[e[0]]
		}
	}

	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	p := make([]float64, n)
	copy(p, b)
	ap := make([]float64, n)

	rr := dot(r, r)
	if rr == 0 {
		return x, nil
	}
	bNorm := math.Sqrt(rr)
	const tol = 1e-10
	maxIter := 4 * n
	if maxIter < 64 {
		maxIter = 64
	}
	for iter := 0; iter < maxIter; iter++ {
		mul(p, ap)
		pap := dot(p, ap)
		if pap <= 0 {
			// p in (or numerically near) the nullspace; project out
			// the constant component and stop.
			break
		}
		alpha := rr / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		newRR := dot(r, r)
		if math.Sqrt(newRR) <= tol*bNorm {
			return x, nil
		}
		beta := newRR / rr
		rr = newRR
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
	}
	if math.Sqrt(rr) > 1e-6*bNorm {
		return nil, fmt.Errorf("diffusion: CG did not converge (residual %.3g of %.3g)", math.Sqrt(rr), bNorm)
	}
	return x, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
