package diffusion

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSolveBalancesCompleteGraph(t *testing.T) {
	g := Complete(4)
	loads := []float64{10, 2, 2, 2}
	caps := []float64{1, 1, 1, 1}
	sol, err := Solve(g, loads, caps)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Applying the flows must equalize loads at 4 each.
	after := apply(g, loads, sol)
	for i, l := range after {
		if math.Abs(l-4) > 1e-6 {
			t.Errorf("after[%d] = %v, want 4", i, l)
		}
	}
}

func apply(g Graph, loads []float64, sol *Solution) []float64 {
	out := append([]float64(nil), loads...)
	for e, f := range sol.Flow {
		out[g.Edges[e][0]] -= f
		out[g.Edges[e][1]] += f
	}
	return out
}

func TestSolveProportionalTargets(t *testing.T) {
	g := Complete(3)
	loads := []float64{9, 0, 0}
	caps := []float64{1, 2, 3} // targets 1.5, 3, 4.5
	sol, err := Solve(g, loads, caps)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	after := apply(g, loads, sol)
	want := []float64{1.5, 3, 4.5}
	for i := range want {
		if math.Abs(after[i]-want[i]) > 1e-6 {
			t.Errorf("after[%d] = %v, want %v", i, after[i], want[i])
		}
	}
}

func TestSolveBalancedInputNoFlow(t *testing.T) {
	g := Complete(5)
	loads := []float64{3, 3, 3, 3, 3}
	caps := []float64{1, 1, 1, 1, 1}
	sol, err := Solve(g, loads, caps)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if tt := sol.TotalTransfer(); tt > 1e-9 {
		t.Errorf("balanced input produced transfer %v", tt)
	}
}

func TestSolveValidation(t *testing.T) {
	g := Complete(2)
	if _, err := Solve(g, []float64{1}, []float64{1, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Solve(g, []float64{1, 1}, []float64{1, 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	empty, err := Solve(Graph{}, nil, nil)
	if err != nil || len(empty.Flow) != 0 {
		t.Errorf("empty graph: %v %v", empty, err)
	}
}

func TestMovesMatrix(t *testing.T) {
	g := Complete(3)
	sol := &Solution{Graph: g, Flow: []float64{2, -1, 0}}
	// Edges of Complete(3): (0,1), (0,2), (1,2).
	m := sol.Moves()
	if m[0][1] != 2 {
		t.Errorf("m[0][1] = %v", m[0][1])
	}
	if m[2][0] != 1 {
		t.Errorf("m[2][0] = %v", m[2][0])
	}
	if m[1][2] != 0 || m[2][1] != 0 {
		t.Errorf("zero flow produced moves: %v", m)
	}
}

// TestQuickSolveReachesTargets: for random loads on random-size complete
// graphs, applying the diffusion plan always reaches the proportional
// targets (flow conservation + correctness of the CG solve).
func TestQuickSolveReachesTargets(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 31))
		n := 2 + int(seed%14)
		g := Complete(n)
		loads := make([]float64, n)
		caps := make([]float64, n)
		var totalLoad, totalCap float64
		for i := range loads {
			loads[i] = r.Float64() * 100
			caps[i] = 0.5 + r.Float64()*4
			totalLoad += loads[i]
			totalCap += caps[i]
		}
		sol, err := Solve(g, loads, caps)
		if err != nil {
			return false
		}
		after := apply(g, loads, sol)
		for i := range after {
			want := caps[i] * totalLoad / totalCap
			if math.Abs(after[i]-want) > 1e-5*(1+totalLoad) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
