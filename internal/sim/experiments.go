package sim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/hierarchy"
	"repro/internal/metrics"
	"repro/internal/querygraph"
	"repro/internal/workload"
)

// ExperimentOptions tunes the figure drivers.
type ExperimentOptions struct {
	// K is the coordinator-tree cluster size parameter (default 4).
	K int
	// VMax is the coarsening budget (default 100).
	VMax int
	// QueryCounts overrides the x-axis of Fig 6 (defaults scale-aware).
	QueryCounts []int
	// Queries is the base query count for Figs 7, 9, 10 (default
	// scale-aware).
	Queries int
	// Rounds is the number of adaptation rounds / arrival intervals.
	Rounds int
	// BatchPerInterval is the number of new queries per interval (Fig 8).
	BatchPerInterval int
}

func (o ExperimentOptions) withDefaults(w *World) ExperimentOptions {
	if o.K == 0 {
		o.K = 4
	}
	if o.VMax == 0 {
		o.VMax = 100
	}
	base := 16 * len(w.Processors)
	if o.Queries == 0 {
		o.Queries = base
	}
	if len(o.QueryCounts) == 0 {
		o.QueryCounts = []int{base / 4, base / 2, base, base * 2}
	}
	if o.Rounds == 0 {
		o.Rounds = 12
	}
	if o.BatchPerInterval == 0 {
		o.BatchPerInterval = o.Queries / 20
	}
	return o
}

func (w *World) newTree(opts ExperimentOptions) (*hierarchy.Tree, error) {
	return hierarchy.Build(w.Oracle, w.Processors, nil, hierarchy.Config{
		K:    opts.K,
		VMax: opts.VMax,
		Seed: w.Cfg.Seed + 7,
	})
}

// Fig6 reproduces Figure 6: initial query distribution quality (a) and
// optimizer running time (b) versus the number of queries, for the
// Centralized, Hierarchical, Greedy and Naive schemes.
func (w *World) Fig6(opts ExperimentOptions) (cost, times *metrics.Table, err error) {
	opts = opts.withDefaults(w)
	cost = &metrics.Table{Title: "Fig 6(a) Weighted Comm. Cost", XLabel: "#queries"}
	times = &metrics.Table{Title: "Fig 6(b) Running time (ms)", XLabel: "#queries"}
	var cen, hier, greedy, naive []float64
	var cenTime, hierTotal, hierResp []float64

	for _, n := range opts.QueryCounts {
		cost.XS = append(cost.XS, fmt.Sprint(n))
		times.XS = append(times.XS, fmt.Sprint(n))
		wl, err := w.GenerateWorkload(n)
		if err != nil {
			return nil, nil, err
		}

		tree, err := w.newTree(opts)
		if err != nil {
			return nil, nil, err
		}
		rep, err := tree.Distribute(wl.Queries, wl.SubRates, wl.SourceOfSub)
		if err != nil {
			return nil, nil, err
		}
		hier = append(hier, w.WeightedCommCost(wl, Placement(tree.Placement())))
		hierResp = append(hierResp, float64(rep.ResponseTime.Milliseconds()))
		hierTotal = append(hierTotal, float64(rep.TotalTime.Milliseconds()))

		start := time.Now()
		cenPlace, _, _, err := w.CentralizedPlacement(wl)
		if err != nil {
			return nil, nil, err
		}
		cenTime = append(cenTime, float64(time.Since(start).Milliseconds()))
		cen = append(cen, w.WeightedCommCost(wl, cenPlace))

		gPlace, err := w.GreedyPlacement(wl)
		if err != nil {
			return nil, nil, err
		}
		greedy = append(greedy, w.WeightedCommCost(wl, gPlace))
		naive = append(naive, w.WeightedCommCost(wl, NaivePlacement(wl)))
	}
	cost.AddSeries("Centralized", cen)
	cost.AddSeries("Hierarchical", hier)
	cost.AddSeries("Greedy", greedy)
	cost.AddSeries("Naive", naive)
	times.AddSeries("Cen.Total", cenTime)
	times.AddSeries("Hie.Total", hierTotal)
	times.AddSeries("Hie.Response", hierResp)
	return cost, times, nil
}

// Fig7 reproduces Figure 7: adapting to inaccurate statistics. Three
// schemes over adaptation rounds: NA-Inaccurate (random start, no
// adaptation), A-Inaccurate (random start, adaptive), A-Accurate (proper
// initial distribution, adaptive).
func (w *World) Fig7(opts ExperimentOptions) (cost, dev *metrics.Table, err error) {
	opts = opts.withDefaults(w)
	cost = &metrics.Table{Title: "Fig 7(a) Comm. cost vs adaptation round", XLabel: "round"}
	dev = &metrics.Table{Title: "Fig 7(b) Load std-dev vs adaptation round", XLabel: "round"}

	wl, err := w.GenerateWorkload(opts.Queries)
	if err != nil {
		return nil, nil, err
	}

	type scheme struct {
		name     string
		random   bool
		adaptive bool
	}
	schemes := []scheme{
		{"NA-Inaccurate", true, false},
		{"A-Inaccurate", true, true},
		{"A-Accurate", false, true},
	}
	for r := 0; r <= opts.Rounds; r++ {
		cost.XS = append(cost.XS, fmt.Sprint(r))
		dev.XS = append(dev.XS, fmt.Sprint(r))
	}
	for _, s := range schemes {
		tree, err := w.newTree(opts)
		if err != nil {
			return nil, nil, err
		}
		if s.random {
			err = tree.DistributeRandom(wl.Queries, wl.SubRates, wl.SourceOfSub, 99)
		} else {
			_, err = tree.Distribute(wl.Queries, wl.SubRates, wl.SourceOfSub)
		}
		if err != nil {
			return nil, nil, err
		}
		var cs, ds []float64
		record := func() {
			p := Placement(tree.Placement())
			cs = append(cs, w.WeightedCommCost(wl, p))
			ds = append(ds, w.LoadStdDev(wl, p, nil))
		}
		record()
		for r := 0; r < opts.Rounds; r++ {
			if s.adaptive {
				if _, err := tree.Adapt(nil); err != nil {
					return nil, nil, err
				}
			}
			record()
		}
		cost.AddSeries(s.name, cs)
		dev.AddSeries(s.name, ds)
	}
	return cost, dev, nil
}

// Fig8 reproduces Figure 8: new queries arrive in batches; schemes Random
// (random allocation of new queries), Online (online insertion), and
// Online-Adaptive (online insertion plus adaptation each interval).
func (w *World) Fig8(opts ExperimentOptions) (cost, dev *metrics.Table, err error) {
	opts = opts.withDefaults(w)
	cost = &metrics.Table{Title: "Fig 8(a) Comm. cost vs time", XLabel: "interval"}
	dev = &metrics.Table{Title: "Fig 8(b) Load std-dev vs time", XLabel: "interval"}
	intervals := opts.Rounds
	for r := 0; r <= intervals; r++ {
		cost.XS = append(cost.XS, fmt.Sprint(r))
		dev.XS = append(dev.XS, fmt.Sprint(r))
	}

	type scheme struct {
		name     string
		random   bool
		adaptive bool
	}
	schemes := []scheme{
		{"Random", true, false},
		{"Online", false, false},
		{"Online-Adaptive", false, true},
	}
	for _, s := range schemes {
		// Fresh workload per scheme so arrival order matches.
		wl, err := w.GenerateWorkload(opts.Queries)
		if err != nil {
			return nil, nil, err
		}
		tree, err := w.newTree(opts)
		if err != nil {
			return nil, nil, err
		}
		if _, err := tree.Distribute(wl.Queries, wl.SubRates, wl.SourceOfSub); err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewPCG(w.Cfg.Seed+31, 31))
		var cs, ds []float64
		record := func() {
			p := Placement(tree.Placement())
			cs = append(cs, w.WeightedCommCost(wl, p))
			ds = append(ds, w.LoadStdDev(wl, p, nil))
		}
		record()
		for r := 0; r < intervals; r++ {
			for i := 0; i < opts.BatchPerInterval; i++ {
				q := wl.NewQuery(w.Processors)
				wl.Queries = append(wl.Queries, q)
				if s.random {
					proc := w.Processors[rng.IntN(len(w.Processors))]
					if err := tree.PlaceAt(q, proc); err != nil {
						return nil, nil, err
					}
				} else if _, err := tree.Insert(q); err != nil {
					return nil, nil, err
				}
			}
			if s.adaptive {
				if _, err := tree.Adapt(nil); err != nil {
					return nil, nil, err
				}
			}
			record()
		}
		cost.AddSeries(s.name, cs)
		dev.AddSeries(s.name, ds)
	}
	return cost, dev, nil
}

// Fig9 reproduces Figure 9: distribution quality and root-coordinator
// insertion throughput versus the cluster size parameter k.
func (w *World) Fig9(opts ExperimentOptions, ks []int) (cost, thr *metrics.Table, err error) {
	opts = opts.withDefaults(w)
	if len(ks) == 0 {
		ks = []int{2, 4, 8, 16}
	}
	cost = &metrics.Table{Title: "Fig 9(a) Comm. cost vs cluster size k", XLabel: "k"}
	thr = &metrics.Table{Title: "Fig 9(b) Root throughput (queries/sec) vs k", XLabel: "k"}
	var cs, ts []float64
	wl, err := w.GenerateWorkload(opts.Queries)
	if err != nil {
		return nil, nil, err
	}
	for _, k := range ks {
		cost.XS = append(cost.XS, fmt.Sprint(k))
		thr.XS = append(thr.XS, fmt.Sprint(k))
		o := opts
		o.K = k
		tree, err := w.newTree(o)
		if err != nil {
			return nil, nil, err
		}
		if _, err := tree.Distribute(wl.Queries, wl.SubRates, wl.SourceOfSub); err != nil {
			return nil, nil, err
		}
		cs = append(cs, w.WeightedCommCost(wl, Placement(tree.Placement())))

		// Root routing throughput: time RouteAtRoot over a probe batch.
		probes := make([]querygraph.QueryInfo, 200)
		for i := range probes {
			probes[i] = wl.NewQuery(w.Processors)
		}
		start := time.Now()
		for _, q := range probes {
			if _, err := tree.RouteAtRoot(q); err != nil {
				return nil, nil, err
			}
		}
		elapsed := time.Since(start)
		ts = append(ts, float64(len(probes))/elapsed.Seconds())
	}
	cost.AddSeries("COSMOS", cs)
	thr.AddSeries("Throughput", ts)
	return cost, thr, nil
}

// Fig10 reproduces Figure 10: stream-rate perturbations ("I" increases,
// "D" decreases 800 random substreams) with three schemes: No-Adaptive,
// Adaptive (hierarchical rounds), and Remapping (centralized re-mapping
// from scratch). It also reports the migration ratio between Remapping and
// Adaptive, which the paper quotes as ≈7×.
func (w *World) Fig10(opts ExperimentOptions) (cost, dev *metrics.Table, migrations map[string]int, err error) {
	opts = opts.withDefaults(w)
	cost = &metrics.Table{Title: "Fig 10(a) Comm. cost under rate perturbation", XLabel: "event"}
	dev = &metrics.Table{Title: "Fig 10(b) Load std-dev under rate perturbation", XLabel: "event"}
	migrations = make(map[string]int)

	pattern := []float64{2, 0.25, 2, 2, 2, 2, 2, 0.25, 0.25, 2} // I D I I I I I D D I
	perturbCount := w.Cfg.Workload.NumSubstreams / 8

	type scheme struct {
		name  string
		mode  string // "none", "adaptive", "remap"
		queue []float64
	}
	schemes := []scheme{
		{name: "No-Adaptive", mode: "none"},
		{name: "Adaptive", mode: "adaptive"},
		{name: "Remapping", mode: "remap"},
	}
	for i := 0; i <= len(pattern); i++ {
		cost.XS = append(cost.XS, fmt.Sprint(i))
		dev.XS = append(dev.XS, fmt.Sprint(i))
	}

	for _, s := range schemes {
		wl, err := w.GenerateWorkload(opts.Queries)
		if err != nil {
			return nil, nil, nil, err
		}
		tree, err := w.newTree(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		if _, err := tree.Distribute(wl.Queries, wl.SubRates, wl.SourceOfSub); err != nil {
			return nil, nil, nil, err
		}
		byName := make(map[string]querygraph.QueryInfo, len(wl.Queries))
		for _, q := range wl.Queries {
			byName[q.Name] = q
		}
		loadOf := func(name string) float64 { return wl.LoadOf(byName[name]) }

		var cs, ds []float64
		record := func() {
			p := Placement(tree.Placement())
			cs = append(cs, w.WeightedCommCost(wl, p))
			ds = append(ds, w.LoadStdDev(wl, p, func(q querygraph.QueryInfo) float64 {
				return wl.LoadOf(q)
			}))
		}
		record()
		for _, factor := range pattern {
			wl.Perturb(perturbCount, factor)
			switch s.mode {
			case "adaptive":
				rep, err := tree.Adapt(loadOf)
				if err != nil {
					return nil, nil, nil, err
				}
				migrations[s.name] += rep.Migrations
			case "remap":
				prev := tree.Placement()
				qs := refreshedQueries(wl)
				if _, err := tree.Distribute(qs, wl.SubRates, wl.SourceOfSub); err != nil {
					return nil, nil, nil, err
				}
				for name, proc := range tree.Placement() {
					if prev[name] != proc {
						migrations[s.name]++
					}
				}
			}
			record()
		}
		cost.AddSeries(s.name, cs)
		dev.AddSeries(s.name, ds)
	}
	return cost, dev, migrations, nil
}

// refreshedQueries returns the workload's queries with loads re-estimated
// under the current (perturbed) rates.
func refreshedQueries(wl *workload.Workload) []querygraph.QueryInfo {
	out := make([]querygraph.QueryInfo, len(wl.Queries))
	for i, q := range wl.Queries {
		q.Load = wl.LoadOf(q)
		out[i] = q
	}
	return out
}
