package sim

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/querygraph"
	"repro/internal/topology"
)

// TestAdaptConvergesFromRandom mirrors Fig 7(a): a random initial
// allocation (modelling inaccurate a-priori statistics) must be gradually
// repaired by adaptation rounds, with migrations decaying over time.
func TestAdaptConvergesFromRandom(t *testing.T) {
	w, wl := testWorld(t, 800)

	tree, err := hierarchy.Build(w.Oracle, w.Processors, nil, hierarchy.Config{K: 3, VMax: 40, Seed: 7})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	random := w.RandomPlacement(wl, 5)
	err = tree.DistributeWith(wl.Queries, wl.SubRates, wl.SourceOfSub,
		func(q querygraph.QueryInfo) topology.NodeID { return random[q.Name] })
	if err != nil {
		t.Fatalf("DistributeWith: %v", err)
	}
	place := Placement(tree.Placement())
	for name, proc := range random {
		if place[name] != proc {
			t.Fatalf("placement of %s not restored: got %d want %d", name, place[name], proc)
		}
	}
	cost0 := w.WeightedCommCost(wl, place)

	var costs []float64
	var migrations []int
	for round := 0; round < 6; round++ {
		rep, err := tree.Adapt(nil)
		if err != nil {
			t.Fatalf("Adapt round %d: %v", round, err)
		}
		place = Placement(tree.Placement())
		costs = append(costs, w.WeightedCommCost(wl, place))
		migrations = append(migrations, rep.Migrations)
		t.Logf("round %d: cost=%.0f migrations=%d", round, costs[round], rep.Migrations)
	}
	t.Logf("initial cost=%.0f", cost0)

	last := len(costs) - 1
	if costs[last] >= cost0*0.97 {
		t.Errorf("adaptation did not meaningfully reduce cost: %.0f -> %.0f", cost0, costs[last])
	}
	if migrations[last] >= migrations[0] {
		t.Errorf("migrations did not decay: first=%d last=%d", migrations[0], migrations[last])
	}
}

// TestAdaptRebalancesSkewedLoad exercises the diffusion path of Algorithm 3:
// all queries piled on three processors must spread out across the system.
func TestAdaptRebalancesSkewedLoad(t *testing.T) {
	w, wl := testWorld(t, 600)

	tree, err := hierarchy.Build(w.Oracle, w.Processors, nil, hierarchy.Config{K: 3, VMax: 40, Seed: 7})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	hot := w.Processors[:3]
	i := 0
	err = tree.DistributeWith(wl.Queries, wl.SubRates, wl.SourceOfSub,
		func(q querygraph.QueryInfo) topology.NodeID {
			i++
			return hot[i%len(hot)]
		})
	if err != nil {
		t.Fatalf("DistributeWith: %v", err)
	}
	dev0 := w.LoadStdDev(wl, Placement(tree.Placement()), nil)

	var dev float64
	for round := 0; round < 5; round++ {
		if _, err := tree.Adapt(nil); err != nil {
			t.Fatalf("Adapt round %d: %v", round, err)
		}
		dev = w.LoadStdDev(wl, Placement(tree.Placement()), nil)
		t.Logf("round %d: dev=%.3f", round, dev)
	}
	t.Logf("initial dev=%.3f", dev0)
	if dev > dev0/2 {
		t.Errorf("adaptation did not rebalance skewed load: %.3f -> %.3f", dev0, dev)
	}
}
