package sim

import (
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/querygraph"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Placement maps query name -> processor node.
type Placement map[string]topology.NodeID

// sortedSubs and sortedProcs fix the iteration order of the receiver-set
// maps the cost models build: the costs are float sums compared bit-for-bit
// across runs, so summation order must not follow map order.
func sortedSubs(m map[int]map[topology.NodeID]bool) []int {
	subs := make([]int, 0, len(m))
	for sub := range m {
		subs = append(subs, sub)
	}
	sort.Ints(subs)
	return subs
}

func sortedProcs(set map[topology.NodeID]bool) []topology.NodeID {
	procs := make([]topology.NodeID, 0, len(set))
	for proc := range set {
		procs = append(procs, proc)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	return procs
}

// WeightedCommCost computes the paper's weighted unit-time communication
// cost Σ r(ni,nj)·d(ni,nj) (§3.1.1): r(ni,nj) is the traffic between a pair
// of nodes and d their latency. Under the Pub/Sub substrate the traffic a
// processor pulls from a source is the UNION of the data interests of the
// queries placed on it (duplicate elimination), and each query's result
// stream flows from its processor to its proxy (zero when co-located — the
// paper subtracts the constant proxy-to-user hop).
func (w *World) WeightedCommCost(wl *workload.Workload, p Placement) float64 {
	// Union interest per processor, as per-substream receiver sets.
	bySub := make(map[int]map[topology.NodeID]bool)
	for _, q := range wl.Queries {
		proc, ok := p[q.Name]
		if !ok {
			continue
		}
		for _, sub := range q.Interest.Indices() {
			set, ok := bySub[sub]
			if !ok {
				set = make(map[topology.NodeID]bool, 4)
				bySub[sub] = set
			}
			set[proc] = true
		}
	}
	// Sum in sorted (sub, proc) order: float addition is not associative,
	// and cost ratios are compared bit-for-bit across runs and schemes.
	var total float64
	for _, sub := range sortedSubs(bySub) {
		procs := bySub[sub]
		rate := wl.SubRates[sub]
		if rate == 0 {
			continue
		}
		src := wl.SourceOfSub[sub]
		row := w.Oracle.Row(src)
		for _, proc := range sortedProcs(procs) {
			total += rate * row[proc]
		}
	}
	for _, q := range wl.Queries {
		proc, ok := p[q.Name]
		if !ok || proc == q.Proxy {
			continue
		}
		total += q.ResultRate * w.Oracle.Latency(proc, q.Proxy)
	}
	return total
}

// MulticastCommCost is an alternative delivery model where each substream
// travels once per link of the shortest-path multicast tree spanning its
// receiving processors — the in-network view of Pub/Sub routing. It is
// reported as a secondary metric (the paper's headline figures follow the
// pairwise model of WeightedCommCost).
func (w *World) MulticastCommCost(wl *workload.Workload, p Placement) float64 {
	// Interested processors per substream.
	interested := make(map[int]map[topology.NodeID]bool)
	for _, q := range wl.Queries {
		proc, ok := p[q.Name]
		if !ok {
			continue
		}
		for _, sub := range q.Interest.Indices() {
			set, ok := interested[sub]
			if !ok {
				set = make(map[topology.NodeID]bool, 4)
				interested[sub] = set
			}
			set[proc] = true
		}
	}

	var total float64
	// Source-side multicast cost, summed in sorted (sub, proc) order: the
	// union of tree edges is order-independent, but the float sum is not.
	visited := make(map[topology.NodeID]bool, 64)
	for _, sub := range sortedSubs(interested) {
		procs := interested[sub]
		rate := wl.SubRates[sub]
		if rate == 0 {
			continue
		}
		src := wl.SourceOfSub[sub]
		t := w.tree(src)
		// Union of tree paths from src to each interested processor:
		// walk parents, accumulating each newly visited edge's latency.
		clear(visited)
		visited[src] = true
		var treeCost float64
		for _, proc := range sortedProcs(procs) {
			for n := proc; !visited[n]; {
				visited[n] = true
				par := t.parent[n]
				if par < 0 {
					break // unreachable
				}
				treeCost += t.dist[n] - t.dist[par]
				n = par
			}
		}
		total += rate * treeCost
	}
	// Result-side unicast cost.
	for _, q := range wl.Queries {
		proc, ok := p[q.Name]
		if !ok || proc == q.Proxy {
			continue
		}
		total += q.ResultRate * w.Oracle.Latency(proc, q.Proxy)
	}
	return total
}

// NoShareCommCost is the same cost without Pub/Sub sharing: every query
// pays the full unicast path for its own input. It quantifies what the
// communication substrate saves (used by the sharing ablation).
func (w *World) NoShareCommCost(wl *workload.Workload, p Placement) float64 {
	var total float64
	for _, q := range wl.Queries {
		proc, ok := p[q.Name]
		if !ok {
			continue
		}
		for _, sub := range q.Interest.Indices() {
			rate := wl.SubRates[sub]
			src := wl.SourceOfSub[sub]
			total += rate * w.Oracle.Latency(src, proc)
		}
		if proc != q.Proxy {
			total += q.ResultRate * w.Oracle.Latency(proc, q.Proxy)
		}
	}
	return total
}

// LoadStdDev returns the standard deviation of per-processor load
// normalized by capability — the balance metric of Figs 7(b), 8(b), 10(b).
// Processors with no queries count as zero load.
func (w *World) LoadStdDev(wl *workload.Workload, p Placement, loadOf func(q querygraph.QueryInfo) float64) float64 {
	loads := make(map[topology.NodeID]float64, len(w.Processors))
	for _, proc := range w.Processors {
		loads[proc] = 0
	}
	for _, q := range wl.Queries {
		proc, ok := p[q.Name]
		if !ok {
			continue
		}
		l := q.Load
		if loadOf != nil {
			l = loadOf(q)
		}
		loads[proc] += l
	}
	xs := make([]float64, 0, len(loads))
	for _, proc := range w.Processors {
		xs = append(xs, loads[proc])
	}
	return metrics.StdDev(xs)
}

// MaxLoadImbalance returns max processor load divided by the mean (1 means
// perfectly balanced).
func (w *World) MaxLoadImbalance(wl *workload.Workload, p Placement) float64 {
	loads := make(map[topology.NodeID]float64, len(w.Processors))
	for _, q := range wl.Queries {
		if proc, ok := p[q.Name]; ok {
			loads[proc] += q.Load
		}
	}
	var sum, maxL float64
	for _, proc := range w.Processors {
		l := loads[proc]
		sum += l
		maxL = math.Max(maxL, l)
	}
	if sum == 0 {
		return 1
	}
	return maxL / (sum / float64(len(w.Processors)))
}
