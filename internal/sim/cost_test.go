package sim

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hierarchy"
	"repro/internal/querygraph"
	"repro/internal/topology"
	"repro/internal/workload"
)

// tinyWorkload builds a hand-checkable 2-query workload over the CI world.
func tinyWorkload(w *World) *workload.Workload {
	nsub := 4
	wl := &workload.Workload{
		SubRates:    []float64{10, 10, 10, 10},
		SourceOfSub: []topology.NodeID{w.Sources[0], w.Sources[0], w.Sources[1], w.Sources[1]},
		GroupOf:     map[string]int{},
	}
	wl.Queries = []querygraph.QueryInfo{
		{
			Name:       "qa",
			Proxy:      w.Processors[0],
			Load:       1,
			Interest:   bitvec.FromIndices(nsub, []int{0, 1}),
			ResultRate: 2,
		},
		{
			Name:       "qb",
			Proxy:      w.Processors[1],
			Load:       1,
			Interest:   bitvec.FromIndices(nsub, []int{0}),
			ResultRate: 2,
		},
	}
	return wl
}

func TestWeightedCommCostUnionSemantics(t *testing.T) {
	w, _ := testWorld(t, 1)
	wl := tinyWorkload(w)
	p0, p1 := w.Processors[0], w.Processors[1]
	src := wl.SourceOfSub[0]

	// Both queries co-located at p0: substream 0 travels ONCE.
	coloc := Placement{"qa": p0, "qb": p0}
	costColoc := w.WeightedCommCost(wl, coloc)
	wantColoc := 10*w.Oracle.Latency(src, p0)*2 + // substreams 0,1 once each
		2*w.Oracle.Latency(p0, p1) // qb's result to its proxy p1
	if diff := costColoc - wantColoc; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("co-located cost = %v, want %v", costColoc, wantColoc)
	}

	// Split across processors: substream 0 travels twice.
	split := Placement{"qa": p0, "qb": p1}
	costSplit := w.WeightedCommCost(wl, split)
	wantSplit := 10*w.Oracle.Latency(src, p0)*2 + 10*w.Oracle.Latency(src, p1)
	if diff := costSplit - wantSplit; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("split cost = %v, want %v", costSplit, wantSplit)
	}
}

func TestMulticastNeverExceedsPairwise(t *testing.T) {
	w, wl := testWorld(t, 200)
	p := NaivePlacement(wl)
	mc := w.MulticastCommCost(wl, p)
	pw := w.WeightedCommCost(wl, p)
	if mc > pw {
		t.Errorf("multicast cost %v exceeds pairwise %v (tree sharing must only save)", mc, pw)
	}
}

func TestLoadStdDevZeroWhenUniform(t *testing.T) {
	w, _ := testWorld(t, 1)
	wl := tinyWorkload(w)
	// One query per processor with equal load over 16 processors can
	// never be uniform, but an empty placement is: everything zero.
	if dev := w.LoadStdDev(wl, Placement{}, nil); dev != 0 {
		t.Errorf("empty placement deviation = %v", dev)
	}
	// Custom load function is honored.
	p := Placement{"qa": w.Processors[0], "qb": w.Processors[1]}
	dev := w.LoadStdDev(wl, p, func(q querygraph.QueryInfo) float64 { return 0 })
	if dev != 0 {
		t.Errorf("zero-load deviation = %v", dev)
	}
}

func TestNoShareCostExceedsShared(t *testing.T) {
	w, wl := testWorld(t, 300)
	p := NaivePlacement(wl)
	shared := w.WeightedCommCost(wl, p)
	solo := w.NoShareCommCost(wl, p)
	if solo <= shared {
		t.Errorf("no-share cost %v not above shared %v", solo, shared)
	}
}

func TestDistributeRandomConsistentState(t *testing.T) {
	w, wl := testWorld(t, 300)
	tree, err := newTreeForTest(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.DistributeRandom(wl.Queries, wl.SubRates, wl.SourceOfSub, 3); err != nil {
		t.Fatalf("DistributeRandom: %v", err)
	}
	if got := len(tree.Placement()); got != len(wl.Queries) {
		t.Fatalf("placed %d of %d", got, len(wl.Queries))
	}
	// Adaptation must run cleanly on the random state.
	if _, err := tree.Adapt(nil); err != nil {
		t.Fatalf("Adapt after DistributeRandom: %v", err)
	}
}

func newTreeForTest(w *World) (*hierarchy.Tree, error) { return w.newTree(ciOpts()) }
