package sim

import (
	"os"
	"testing"

	"repro/internal/metrics"
)

func ciOpts() ExperimentOptions {
	return ExperimentOptions{
		K:           3,
		VMax:        40,
		QueryCounts: []int{200, 400, 800},
		Queries:     600,
		Rounds:      6,
	}
}

func seriesByName(t *testing.T, tbl *metrics.Table, name string) []float64 {
	t.Helper()
	for _, s := range tbl.Series {
		if s.Name == name {
			return s.Values
		}
	}
	t.Fatalf("series %q not found in %q", name, tbl.Title)
	return nil
}

func last(xs []float64) float64 { return xs[len(xs)-1] }

func TestFig6Shapes(t *testing.T) {
	w, _ := testWorld(t, 1)
	cost, times, err := w.Fig6(ciOpts())
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	_ = cost.Write(os.Stderr)
	_ = times.Write(os.Stderr)

	naive := seriesByName(t, cost, "Naive")
	hier := seriesByName(t, cost, "Hierarchical")
	cen := seriesByName(t, cost, "Centralized")
	for i := range naive {
		if hier[i] >= naive[i] {
			t.Errorf("point %d: hierarchical %.0f not below naive %.0f", i, hier[i], naive[i])
		}
		if cen[i] >= naive[i] {
			t.Errorf("point %d: centralized %.0f not below naive %.0f", i, cen[i], naive[i])
		}
		// Paper: hierarchical tracks centralized closely.
		if hier[i] > cen[i]*1.25 {
			t.Errorf("point %d: hierarchical %.0f more than 25%% above centralized %.0f", i, hier[i], cen[i])
		}
	}
	// Fig 6(b): hierarchical response time well below centralized total.
	cenT := seriesByName(t, times, "Cen.Total")
	resp := seriesByName(t, times, "Hie.Response")
	if last(resp) > last(cenT) {
		t.Errorf("hierarchical response %.0fms not below centralized %.0fms", last(resp), last(cenT))
	}
}

func TestFig7Shapes(t *testing.T) {
	w, _ := testWorld(t, 1)
	cost, dev, err := w.Fig7(ciOpts())
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	_ = cost.Write(os.Stderr)
	_ = dev.Write(os.Stderr)

	na := seriesByName(t, cost, "NA-Inaccurate")
	ai := seriesByName(t, cost, "A-Inaccurate")
	aa := seriesByName(t, cost, "A-Accurate")
	if last(ai) >= last(na) {
		t.Errorf("adaptive-inaccurate %.0f did not improve on non-adaptive %.0f", last(ai), last(na))
	}
	// A-Inaccurate converges toward A-Accurate (within 15%).
	if last(ai) > last(aa)*1.15 {
		t.Errorf("A-Inaccurate %.0f did not converge near A-Accurate %.0f", last(ai), last(aa))
	}
	// Load deviation of the adaptive scheme must improve on round 0.
	aiDev := seriesByName(t, dev, "A-Inaccurate")
	if last(aiDev) >= aiDev[0] {
		t.Errorf("A-Inaccurate load deviation %.3f did not improve on %.3f", last(aiDev), aiDev[0])
	}
}

func TestFig8Shapes(t *testing.T) {
	w, _ := testWorld(t, 1)
	opts := ciOpts()
	opts.Queries = 400
	opts.BatchPerInterval = 40
	cost, dev, err := w.Fig8(opts)
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	_ = cost.Write(os.Stderr)
	_ = dev.Write(os.Stderr)

	random := seriesByName(t, cost, "Random")
	online := seriesByName(t, cost, "Online")
	oa := seriesByName(t, cost, "Online-Adaptive")
	if last(online) >= last(random) {
		t.Errorf("online %.0f not below random %.0f", last(online), last(random))
	}
	if last(oa) >= last(random) {
		t.Errorf("online-adaptive %.0f not below random %.0f", last(oa), last(random))
	}
	// Online-Adaptive keeps load deviation near Online's (the paper
	// shows it strictly below; at CI scale the two are within noise, so
	// assert a 15% band).
	onDev := seriesByName(t, dev, "Online")
	oaDev := seriesByName(t, dev, "Online-Adaptive")
	if last(oaDev) > last(onDev)*1.15 {
		t.Errorf("online-adaptive deviation %.3f above online %.3f", last(oaDev), last(onDev))
	}
}

func TestFig9Shapes(t *testing.T) {
	w, _ := testWorld(t, 1)
	opts := ciOpts()
	opts.Queries = 400
	cost, thr, err := w.Fig9(opts, []int{2, 4, 8})
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	_ = cost.Write(os.Stderr)
	_ = thr.Write(os.Stderr)
	ts := seriesByName(t, thr, "Throughput")
	for _, v := range ts {
		if v <= 0 {
			t.Errorf("non-positive throughput %v", v)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	w, _ := testWorld(t, 1)
	opts := ciOpts()
	opts.Queries = 400
	cost, dev, migs, err := w.Fig10(opts)
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	_ = cost.Write(os.Stderr)
	_ = dev.Write(os.Stderr)
	t.Logf("migrations: %v", migs)

	noAd := seriesByName(t, dev, "No-Adaptive")
	ad := seriesByName(t, dev, "Adaptive")
	if last(ad) >= last(noAd) {
		t.Errorf("adaptive deviation %.3f not below no-adaptive %.3f", last(ad), last(noAd))
	}
	if migs["Remapping"] <= migs["Adaptive"] {
		t.Errorf("remapping migrations %d not above adaptive %d", migs["Remapping"], migs["Adaptive"])
	}
}
