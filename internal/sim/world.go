// Package sim is the simulation harness of the performance study (§4.1):
// it wires the topology generator, workload generator, coordinator
// hierarchy, baselines and cost model together, and provides one driver per
// figure of the paper's evaluation.
package sim

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/workload"
)

// Scale selects an experiment size.
type Scale int

// Available scales. ScaleCI is sized for single-machine test runs; ScalePaper
// reproduces the paper's 4096-node / 20k-substream configuration.
const (
	ScaleCI Scale = iota + 1
	ScaleMedium
	ScalePaper
)

// Config describes a simulated world.
type Config struct {
	Topology      topology.Config
	NumSources    int
	NumProcessors int
	Workload      workload.Config
	Seed          uint64
}

// ConfigFor returns the configuration for a scale.
func ConfigFor(s Scale) Config {
	switch s {
	case ScalePaper:
		// §4.1: 4096 nodes, 100 sources, 256 processors, 20,000
		// substreams.
		return Config{
			Topology:      topology.DefaultConfig(),
			NumSources:    100,
			NumProcessors: 256,
			Workload:      workload.DefaultConfig(),
			Seed:          1,
		}
	case ScaleMedium:
		tc := topology.DefaultConfig()
		tc.TransitDomains = 2
		tc.TransitNodes = 3
		tc.StubDomainsPerNode = 8
		tc.StubNodes = 8
		wc := workload.DefaultConfig()
		wc.NumSubstreams = 4000
		wc.SubsPerQueryMin = 40
		wc.SubsPerQueryMax = 80
		return Config{
			Topology:      tc,
			NumSources:    40,
			NumProcessors: 96,
			Workload:      wc,
			Seed:          1,
		}
	default: // ScaleCI
		// Sized so the paper's effects are visible on one machine:
		// queries ≫ processors (so unoptimized placements saturate
		// every processor with every hot substream) while one
		// interest group still fits on a couple of processors.
		tc := topology.DefaultConfig()
		tc.TransitDomains = 2
		tc.TransitNodes = 2
		tc.StubDomainsPerNode = 4
		tc.StubNodes = 8
		wc := workload.DefaultConfig()
		wc.NumSubstreams = 6000
		wc.SubsPerQueryMin = 20
		wc.SubsPerQueryMax = 40
		wc.Groups = 10
		return Config{
			Topology:      tc,
			NumSources:    8,
			NumProcessors: 16,
			Seed:          1,
			Workload:      wc,
		}
	}
}

// World is an instantiated simulation environment.
type World struct {
	Cfg        Config
	Graph      *topology.Graph
	Oracle     *topology.Oracle
	Sources    []topology.NodeID
	Processors []topology.NodeID

	// spTrees caches shortest-path trees rooted at sources and
	// processors for multicast-cost computation.
	spTrees map[topology.NodeID]spTree
}

type spTree struct {
	dist   []float64
	parent []topology.NodeID
}

// NewWorld generates the topology and picks disjoint source and processor
// node sets (stub nodes, as in the paper where the rest act as routers).
func NewWorld(cfg Config) (*World, error) {
	g, err := topology.Generate(cfg.Topology)
	if err != nil {
		return nil, err
	}
	exclude := make(map[topology.NodeID]bool)
	sources, err := topology.SampleNodes(g, topology.Stub, cfg.NumSources, cfg.Seed, exclude)
	if err != nil {
		return nil, fmt.Errorf("sim: pick sources: %w", err)
	}
	for _, s := range sources {
		exclude[s] = true
	}
	procs, err := topology.SampleNodes(g, topology.Stub, cfg.NumProcessors, cfg.Seed+1, exclude)
	if err != nil {
		return nil, fmt.Errorf("sim: pick processors: %w", err)
	}
	return &World{
		Cfg:        cfg,
		Graph:      g,
		Oracle:     topology.NewOracle(g),
		Sources:    sources,
		Processors: procs,
		spTrees:    make(map[topology.NodeID]spTree),
	}, nil
}

// GenerateWorkload draws a workload of numQueries queries over the world.
func (w *World) GenerateWorkload(numQueries int) (*workload.Workload, error) {
	wc := w.Cfg.Workload
	wc.Seed = w.Cfg.Seed + 100
	return workload.Generate(wc, w.Sources, w.Processors, numQueries)
}

func (w *World) tree(root topology.NodeID) spTree {
	if t, ok := w.spTrees[root]; ok {
		return t
	}
	dist, parent := w.Graph.DijkstraTree(root)
	t := spTree{dist: dist, parent: parent}
	w.spTrees[root] = t
	return t
}
