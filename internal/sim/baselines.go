package sim

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/mapping"
	"repro/internal/netgraph"
	"repro/internal/querygraph"
	"repro/internal/topology"
	"repro/internal/workload"
)

// GlobalGraphs builds the global query graph and network graph used by the
// Centralized and Greedy baselines of §4.1.1: every query as a q-vertex,
// n-vertices for sources (anchored, zero capability) and proxies (pinned to
// their processors), and the complete processor network graph.
func (w *World) GlobalGraphs(wl *workload.Workload) (*querygraph.Graph, *netgraph.Graph, error) {
	verts := make([]netgraph.Vertex, 0, len(w.Processors)+len(w.Sources))
	procIdx := make(map[topology.NodeID]int, len(w.Processors))
	for _, p := range w.Processors {
		procIdx[p] = len(verts)
		verts = append(verts, netgraph.Vertex{
			Node: p, Capability: 1, Members: []topology.NodeID{p},
		})
	}
	anchorIdx := make(map[topology.NodeID]int, len(w.Sources))
	for _, s := range w.Sources {
		anchorIdx[s] = len(verts)
		verts = append(verts, netgraph.Vertex{Node: s})
	}
	ng, err := netgraph.New(verts, w.Oracle)
	if err != nil {
		return nil, nil, err
	}

	qg, err := querygraph.New(wl.SubRates, wl.SourceOfSub)
	if err != nil {
		return nil, nil, err
	}
	referenced := make(map[topology.NodeID]bool)
	for _, q := range wl.Queries {
		qg.AddQVertex(q)
		referenced[q.Proxy] = true
	}
	for _, s := range wl.SourceOfSub {
		referenced[s] = true
	}
	for _, p := range w.Processors {
		if referenced[p] {
			qg.AddNVertex(p, procIdx[p], true)
		}
	}
	for _, s := range w.Sources {
		if referenced[s] {
			qg.AddNVertex(s, anchorIdx[s], false)
		}
	}
	qg.ComputeEdges()
	return qg, ng, nil
}

// PlacementFromAssignment converts a global assignment into a query
// placement.
func PlacementFromAssignment(qg *querygraph.Graph, ng *netgraph.Graph, a mapping.Assignment) Placement {
	p := make(Placement)
	for vi, v := range qg.Vertices {
		if len(v.Queries) == 0 || a[vi] == mapping.Unassigned {
			continue
		}
		node := ng.Vertices[a[vi]].Node
		for _, q := range v.Queries {
			p[q.Name] = node
		}
	}
	return p
}

// NaivePlacement places every query at its proxy (baseline "Naive").
func NaivePlacement(wl *workload.Workload) Placement {
	p := make(Placement, len(wl.Queries))
	for _, q := range wl.Queries {
		p[q.Name] = q.Proxy
	}
	return p
}

// RandomPlacement places every query on a uniform random processor
// (baseline "Random" of Fig 8; also models inaccurate a-priori statistics
// in Fig 7).
func (w *World) RandomPlacement(wl *workload.Workload, seed uint64) Placement {
	rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
	p := make(Placement, len(wl.Queries))
	for _, q := range wl.Queries {
		p[q.Name] = w.Processors[rng.IntN(len(w.Processors))]
	}
	return p
}

// GreedyPlacement runs only the greedy half of Algorithm 2 on the global
// graphs (baseline "Greedy").
func (w *World) GreedyPlacement(wl *workload.Workload) (Placement, error) {
	qg, ng, err := w.GlobalGraphs(wl)
	if err != nil {
		return nil, err
	}
	m := mapping.NewMapper(qg, ng, mapping.Options{})
	a, err := m.Greedy()
	if err != nil {
		return nil, err
	}
	return PlacementFromAssignment(qg, ng, a), nil
}

// CentralizedPlacement runs Algorithm 2 on the global graphs (baseline
// "Centralized", the optimality benchmark of §4.1.1). To make the global
// instance tractable while retaining the exact algorithm's cluster-moving
// power, it runs multilevel: coarsen the global query graph once, exact-
// refine at the coarse level, project the assignment to queries, and polish
// with fine-grained sweeps. It returns the placement and the graphs so that
// remapping experiments can reuse them.
func (w *World) CentralizedPlacement(wl *workload.Workload) (Placement, *querygraph.Graph, *netgraph.Graph, error) {
	qg, ng, err := w.GlobalGraphs(wl)
	if err != nil {
		return nil, nil, nil, err
	}
	a, err := centralizedMap(qg, ng, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	return PlacementFromAssignment(qg, ng, a), qg, ng, nil
}

// centralizedMap is the multilevel global mapping shared by the Centralized
// baseline and the Remapping scheme of Fig 10. vmax 0 selects a coarse size
// proportional to the number of processors.
func centralizedMap(qg *querygraph.Graph, ng *netgraph.Graph, vmax int) (mapping.Assignment, error) {
	if vmax == 0 {
		vmax = 8 * ng.Len()
		if vmax > 1200 {
			vmax = 1200
		}
	}
	rng := rand.New(rand.NewPCG(99, 9999))
	res := qg.Coarsen(querygraph.CoarsenOptions{
		VMax:       vmax,
		Rng:        rng,
		NoQN:       true,
		CountQOnly: true,
	})
	mc := mapping.NewMapper(res.Graph, ng, mapping.Options{
		// Exact refinement at the coarse level is the expensive,
		// high-quality step that makes this the benchmark.
		ExactLimit: vmax*ng.Len() + 1,
		Rng:        rng,
	})
	coarseA, err := mc.Map()
	if err != nil {
		return nil, fmt.Errorf("sim: centralized mapping: %w", err)
	}
	// Project to the fine graph and polish with sweeps.
	a := make(mapping.Assignment, len(qg.Vertices))
	for fi := range qg.Vertices {
		a[fi] = coarseA[res.FineToCoarse[fi]]
	}
	mf := mapping.NewMapper(qg, ng, mapping.Options{ExactLimit: 1, Rng: rng})
	return mf.Refine(a), nil
}
