package sim

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/workload"
)

func testWorld(t *testing.T, queries int) (*World, *workload.Workload) {
	t.Helper()
	w, err := NewWorld(ConfigFor(ScaleCI))
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	wl, err := w.GenerateWorkload(queries)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	return w, wl
}

func TestEndToEndHierarchicalBeatsNaive(t *testing.T) {
	w, wl := testWorld(t, 800)

	tree, err := hierarchy.Build(w.Oracle, w.Processors, nil, hierarchy.Config{K: 3, VMax: 40, Seed: 7})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := tree.Distribute(wl.Queries, wl.SubRates, wl.SourceOfSub); err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	place := Placement(tree.Placement())
	if len(place) != len(wl.Queries) {
		t.Fatalf("placed %d of %d queries", len(place), len(wl.Queries))
	}

	naive := NaivePlacement(wl)
	costH := w.WeightedCommCost(wl, place)
	costN := w.WeightedCommCost(wl, naive)
	t.Logf("hierarchical=%.0f naive=%.0f", costH, costN)
	if costH >= costN {
		t.Errorf("hierarchical cost %.0f not below naive %.0f", costH, costN)
	}

	imb := w.MaxLoadImbalance(wl, place)
	t.Logf("max load imbalance: %.3f", imb)
	if imb > 3 {
		t.Errorf("hierarchical load imbalance %.2f too high", imb)
	}
}

func TestCentralizedAndGreedy(t *testing.T) {
	w, wl := testWorld(t, 800)

	cen, _, _, err := w.CentralizedPlacement(wl)
	if err != nil {
		t.Fatalf("Centralized: %v", err)
	}
	greedy, err := w.GreedyPlacement(wl)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	naive := NaivePlacement(wl)

	costC := w.WeightedCommCost(wl, cen)
	costG := w.WeightedCommCost(wl, greedy)
	costN := w.WeightedCommCost(wl, naive)
	t.Logf("centralized=%.0f greedy=%.0f naive=%.0f", costC, costG, costN)
	if costC > costG*1.05 {
		t.Errorf("centralized %.0f worse than greedy %.0f", costC, costG)
	}
	if costG >= costN {
		t.Errorf("greedy %.0f not below naive %.0f", costG, costN)
	}
}
