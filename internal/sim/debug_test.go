package sim

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/mapping"
	"repro/internal/topology"
	"repro/internal/workload"
)

// costParts decomposes the weighted cost into multicast-input and result
// sides for diagnosis.
func (w *World) costParts(wl *workload.Workload, p Placement) (src, res float64) {
	interested := make(map[int]map[topology.NodeID]bool)
	for _, q := range wl.Queries {
		proc, ok := p[q.Name]
		if !ok {
			continue
		}
		for _, sub := range q.Interest.Indices() {
			set, ok := interested[sub]
			if !ok {
				set = make(map[topology.NodeID]bool, 4)
				interested[sub] = set
			}
			set[proc] = true
		}
	}
	visited := make(map[topology.NodeID]bool, 64)
	for sub, procs := range interested {
		rate := wl.SubRates[sub]
		t := w.tree(wl.SourceOfSub[sub])
		clear(visited)
		visited[wl.SourceOfSub[sub]] = true
		var treeCost float64
		for proc := range procs {
			for n := proc; !visited[n]; {
				visited[n] = true
				par := t.parent[n]
				if par < 0 {
					break
				}
				//lint:maporder diagnostic decomposition, only ever t.Logf'd at %.0f — never asserted
				treeCost += t.dist[n] - t.dist[par]
				n = par
			}
		}
		//lint:maporder diagnostic decomposition, only ever t.Logf'd at %.0f — never asserted
		src += rate * treeCost
	}
	for _, q := range wl.Queries {
		proc, ok := p[q.Name]
		if !ok || proc == q.Proxy {
			continue
		}
		res += q.ResultRate * w.Oracle.Latency(proc, q.Proxy)
	}
	return src, res
}

func TestDiagnoseCost(t *testing.T) {
	w, wl := testWorld(t, 800)

	cen, qg, ng, err := w.CentralizedPlacement(wl)
	if err != nil {
		t.Fatal(err)
	}

	naive := NaivePlacement(wl)
	// WEC of naive: build assignment placing each query at its proxy.
	aNaive := make(mapping.Assignment, len(qg.Vertices))
	for vi, v := range qg.Vertices {
		if v.IsN() {
			aNaive[vi] = v.Clu
			continue
		}
		aNaive[vi] = ng.IndexOfNode(v.Queries[0].Proxy)
	}

	tree, err := hierarchy.Build(w.Oracle, w.Processors, nil, hierarchy.Config{K: 3, VMax: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Distribute(wl.Queries, wl.SubRates, wl.SourceOfSub); err != nil {
		t.Fatal(err)
	}
	hier := Placement(tree.Placement())

	// Oracle placement: cluster queries by interest group onto dedicated
	// processor slices (upper bound on what clustering can achieve).
	oracle := make(Placement, len(wl.Queries))
	perGroup := len(w.Processors) / wl.Cfg.Groups
	if perGroup < 1 {
		perGroup = 1
	}
	counter := make(map[int]int)
	for _, q := range wl.Queries {
		g := wl.GroupOf[q.Name]
		slot := counter[g] % perGroup
		counter[g]++
		oracle[q.Name] = w.Processors[(g*perGroup+slot)%len(w.Processors)]
	}

	for _, tc := range []struct {
		name  string
		place Placement
	}{{"naive", naive}, {"centralized", cen}, {"hierarchical", hier}, {"group-oracle", oracle}} {
		src, res := w.costParts(wl, tc.place)
		procs := make(map[topology.NodeID]bool)
		for _, p := range tc.place {
			procs[p] = true
		}
		// Average number of receiving processors per substream.
		perSub := make(map[int]map[topology.NodeID]bool)
		for _, q := range wl.Queries {
			for _, sub := range q.Interest.Indices() {
				if perSub[sub] == nil {
					perSub[sub] = make(map[topology.NodeID]bool)
				}
				perSub[sub][tc.place[q.Name]] = true
			}
		}
		var fan float64
		for _, s := range perSub {
			//lint:maporder small-integer terms: float64 addition of set sizes is exact, so order cannot change the sum
			fan += float64(len(s))
		}
		fan /= float64(len(perSub))
		t.Logf("%-12s pairwise=%.0f mcastSrc=%.0f res=%.0f procsUsed=%d avgFanout=%.1f",
			tc.name, w.WeightedCommCost(wl, tc.place), src, res, len(procs), fan)
	}
	t.Logf("WEC naive=%.0f", mapping.WEC(qg, ng, aNaive))
}
