package main

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/metrics"
)

// opsServer is the node's operational HTTP surface:
//
//	/healthz           200 when every overlay link is healthy, 503 otherwise
//	/metrics           Prometheus text exposition of the process counters
//	                   plus point-in-time routing/advert gauges
//	/debug/overlay.dot DOT rendering of this node's view of the overlay,
//	                   one edge per link with its routing-state summary
//
// The listener is bound at construction (so ":0" resolves before Start) and
// served from serve(); close() shuts it down with the node.
type opsServer struct {
	svc *service
	ln  net.Listener
	srv *http.Server
}

func newOpsServer(s *service, addr string) (*opsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops listen %s: %w", addr, err)
	}
	o := &opsServer{svc: s, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", o.handleHealthz)
	mux.HandleFunc("/metrics", o.handleMetrics)
	mux.HandleFunc("/debug/overlay.dot", o.handleOverlayDot)
	o.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return o, nil
}

func (o *opsServer) addr() string { return o.ln.Addr().String() }

func (o *opsServer) serve() {
	go func() {
		// ErrServerClosed is the close() path; anything else is logged
		// but not fatal — the overlay node keeps running without its ops
		// surface rather than dying mid-flight.
		if err := o.srv.Serve(o.ln); err != nil && err != http.ErrServerClosed {
			o.svc.log.Error("ops server failed", "err", err)
		}
	}()
}

func (o *opsServer) close() {
	//lint:errdrop best-effort teardown; the listener is closed either way
	_ = o.srv.Close()
}

// handleHealthz reports overlay liveness: 200 and "status=ok" when every
// peer pipe is healthy (no dial/write failure since the last successful
// connect), 503 and "status=degraded" otherwise. The body lists readiness
// and one line per link, so a probe failure names the dead peer.
func (o *opsServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	healthy := true
	fmt.Fprintf(&b, "node=%d ready=%v\n", o.svc.cfg.NodeID, o.svc.ready.Load())
	for _, st := range o.svc.node.PipeStatus() {
		ok := st.Healthy()
		healthy = healthy && ok
		errStr := ""
		if st.LastErr != nil {
			errStr = st.LastErr.Error()
		}
		fmt.Fprintf(&b, "peer=%d addr=%s connected=%v healthy=%v queued=%d err=%q\n",
			st.Peer, st.Addr, st.Connected, ok, st.Queued, errStr)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	status := "status=ok\n"
	if !healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
		status = "status=degraded\n"
	}
	_, _ = fmt.Fprint(w, status, b.String()) //lint:errdrop client went away mid-response; nothing to do
}

// handleMetrics serves the Prometheus text format: every process-wide
// counter (pubsub.* routing/suppression/churn, transport.* batching/loss)
// plus point-in-time gauges for routing-table population, advert-table
// population, readiness and per-link byte accounting.
func (o *opsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	remote, local := o.svc.node.Broker.RoutingStateSize()
	own, learned := o.svc.node.Broker.AdvertStateSize()
	gauges := map[string]int64{
		"routing.remote_records": int64(remote),
		"routing.local_records":  int64(local),
		"adverts.own":            int64(own),
		"adverts.learned":        int64(learned),
		"node.ready":             0,
	}
	if o.svc.ready.Load() {
		gauges["node.ready"] = 1
	}
	for _, st := range o.svc.node.PipeStatus() {
		gauges[fmt.Sprintf("link.%d.data_bytes", st.Peer)] = st.DataBytes
		gauges[fmt.Sprintf("link.%d.control_bytes", st.Peer)] = st.ControlBytes
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := metrics.WritePrometheus(w, gauges); err != nil {
		o.svc.log.Debug("metrics write aborted", "err", err)
	}
}

// handleOverlayDot renders this node's live view of the overlay as DOT: the
// node itself, one edge per neighbor labeled with the link's routing-state
// summary (recorded subscriptions and learned adverts behind it, transport
// health and bytes). Feed it to `dot -Tsvg` or diff it in a soak.
func (o *opsServer) handleOverlayDot(w http.ResponseWriter, _ *http.Request) {
	dirs := o.svc.node.Broker.DirStates()
	status := o.svc.node.PipeStatus()
	health := make(map[int]string, len(status))
	bytes := make(map[int]int64, len(status))
	for _, st := range status {
		h := "healthy"
		if !st.Healthy() {
			h = "unhealthy"
		} else if !st.Connected {
			h = "idle"
		}
		health[int(st.Peer)] = h
		bytes[int(st.Peer)] = st.DataBytes + st.ControlBytes
	}

	var b strings.Builder
	b.WriteString("graph cosmos {\n")
	remote, local := o.svc.node.Broker.RoutingStateSize()
	own, _ := o.svc.node.Broker.AdvertStateSize()
	fmt.Fprintf(&b, "  n%d [label=\"node %d\\nlocal_subs=%d remote_subs=%d own_adverts=%d\", shape=box];\n",
		o.svc.cfg.NodeID, o.svc.cfg.NodeID, local, remote, own)
	for _, d := range dirs { // already in ascending neighbor order
		id := int(d.Neighbor)
		fmt.Fprintf(&b, "  n%d [label=\"node %d\"];\n", id, id)
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"subs=%d adverts=%d %s bytes=%d\"];\n",
			o.svc.cfg.NodeID, id, d.Subs, d.Adverts, health[id], bytes[id])
	}
	b.WriteString("}\n")
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	_, _ = fmt.Fprint(w, b.String()) //lint:errdrop client went away mid-response; nothing to do
}
