package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/logging"
	"repro/internal/nodeconfig"
)

// syncBuf is a goroutine-safe log sink the test can read while the services
// write.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func loadCfg(t *testing.T, args ...string) *nodeconfig.Config {
	t.Helper()
	cfg, err := nodeconfig.Load(args, func(string) (string, bool) { return "", false }, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServiceEndToEnd boots the compose topology in-process — publisher 0,
// forwarder 1, subscriber 2 on a line — and walks the node-smoke script's
// assertions: filtered delivery, healthz/metrics/overlay.dot on every node,
// then a graceful shutdown of the publisher and the survivors' residual
// routing state draining to empty.
func TestServiceEndToEnd(t *testing.T) {
	common := []string{"-listen", "127.0.0.1:0", "-ops-listen", "127.0.0.1:0",
		"-log-level", "debug", "-peer-wait", "5s", "-drain-timeout", "5s"}
	cfgs := [3]*nodeconfig.Config{
		loadCfg(t, append([]string{"-id", "0", "-advertise", "Station1", "-publish", "Station1", "-period", "20ms"}, common...)...),
		loadCfg(t, append([]string{"-id", "1"}, common...)...),
		loadCfg(t, append([]string{"-id", "2", "-subscribe", "Station1:snowHeight>=0"}, common...)...),
	}

	var logs [3]*syncBuf
	var svcs [3]*service
	for i, cfg := range cfgs {
		logs[i] = &syncBuf{}
		svc, err := newService(cfg, logging.New(logs[i], logging.LevelDebug).With("node", cfg.NodeID))
		if err != nil {
			t.Fatalf("newService %d: %v", i, err)
		}
		svcs[i] = svc
	}
	defer func() {
		for _, s := range svcs {
			s.Close()
		}
	}()

	// Line topology 0–1–2, wired with the runtime-resolved addresses.
	cfgs[0].Peers = []nodeconfig.Peer{{ID: 1, Addr: svcs[1].Addr()}}
	cfgs[1].Peers = []nodeconfig.Peer{{ID: 0, Addr: svcs[0].Addr()}, {ID: 2, Addr: svcs[2].Addr()}}
	cfgs[2].Peers = []nodeconfig.Peer{{ID: 1, Addr: svcs[1].Addr()}}
	for i, svc := range svcs {
		if err := svc.Start(); err != nil {
			t.Fatalf("Start %d: %v", i, err)
		}
	}

	// End-to-end filtered delivery: the subscriber logs msg=delivery once
	// tuples flow 0 → 1 → 2 through the filter.
	waitFor(t, "filtered delivery at the subscriber", func() bool {
		return strings.Contains(logs[2].String(), "msg=delivery")
	})
	if !strings.Contains(logs[2].String(), "stream=Station1") {
		t.Fatalf("delivery log missing stream field:\n%s", logs[2].String())
	}

	// The subscriber reaches readiness via advert arrival, not sleeps.
	waitFor(t, "subscriber readiness", func() bool { return svcs[2].ready.Load() })
	if !strings.Contains(logs[2].String(), "msg=ready") {
		t.Fatalf("readiness not logged:\n%s", logs[2].String())
	}

	// Ops surface on every node.
	for i, svc := range svcs {
		base := "http://" + svc.OpsAddr()
		code, body := httpGet(t, base+"/healthz")
		if code != http.StatusOK || !strings.Contains(body, "status=ok") {
			t.Fatalf("node %d /healthz = %d:\n%s", i, code, body)
		}
		code, body = httpGet(t, base+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("node %d /metrics = %d", i, code)
		}
		for _, metric := range []string{
			"cosmos_pubsub_routed_tuples", "cosmos_transport_wire_msgs",
			"cosmos_adverts_learned", "cosmos_routing_remote_records", "cosmos_node_ready",
		} {
			if !strings.Contains(body, metric) {
				t.Fatalf("node %d /metrics missing %s:\n%s", i, metric, body)
			}
		}
		code, body = httpGet(t, base+"/debug/overlay.dot")
		if code != http.StatusOK || !strings.Contains(body, "graph cosmos {") {
			t.Fatalf("node %d /debug/overlay.dot = %d:\n%s", i, code, body)
		}
		if !strings.Contains(body, fmt.Sprintf("n%d -- ", i)) {
			t.Fatalf("node %d overlay.dot has no edges:\n%s", i, body)
		}
	}

	// The middle node's healthz names both links.
	_, body := httpGet(t, "http://"+svcs[1].OpsAddr()+"/healthz")
	if !strings.Contains(body, "peer=0") || !strings.Contains(body, "peer=2") {
		t.Fatalf("middle node healthz missing links:\n%s", body)
	}

	// Graceful shutdown of the publisher: its advert withdrawal must drain
	// the survivors' routing state (no residual adverts, no remote records
	// — the subscription they justified is pruned by the mirror rule).
	svcs[0].Shutdown()
	if !strings.Contains(logs[0].String(), "msg=drained") {
		t.Fatalf("publisher did not log a completed drain:\n%s", logs[0].String())
	}
	waitFor(t, "survivors to drain the departed node's state", func() bool {
		for _, svc := range svcs[1:] {
			if _, learned := svc.node.Broker.AdvertStateSize(); learned != 0 {
				return false
			}
			if remote, _ := svc.node.Broker.RoutingStateSize(); remote != 0 {
				return false
			}
		}
		return true
	})
	// The subscriber's own client subscription survives its publisher.
	if _, local := svcs[2].node.Broker.RoutingStateSize(); local != 1 {
		t.Fatalf("subscriber lost its local subscription: local = %d", local)
	}
	// And the survivors' metrics reflect the drained state.
	_, body = httpGet(t, "http://"+svcs[1].OpsAddr()+"/metrics")
	for _, line := range []string{"cosmos_adverts_learned 0", "cosmos_routing_remote_records 0"} {
		if !strings.Contains(body, line) {
			t.Fatalf("survivor metrics not drained, missing %q:\n%s", line, body)
		}
	}

	svcs[2].Shutdown()
	svcs[1].Shutdown()
	// Shutdown is idempotent.
	svcs[1].Shutdown()
}
