package main

import (
	"strings"
	"testing"

	"repro/internal/query"
)

func TestParseSubscriptionStreamOnly(t *testing.T) {
	sub, err := parseSubscription("n1", "Station1")
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != "n1" || len(sub.Streams) != 1 || sub.Streams[0] != "Station1" || len(sub.Filters) != 0 {
		t.Fatalf("sub = %+v", sub)
	}
}

func TestParseSubscriptionOperators(t *testing.T) {
	cases := []struct {
		expr string
		op   query.Op
		val  float64
	}{
		{"Station1:snowHeight>40", query.Gt, 40},
		{"Station1:snowHeight>=40", query.Ge, 40},
		{"Station1:snowHeight<40", query.Lt, 40},
		{"Station1:snowHeight<=40", query.Le, 40},
		{"Station1: snowHeight  >  40.5 ", query.Gt, 40.5}, // whitespace everywhere
		{" Station1 :temperature<=-2", query.Le, -2},       // negative literal
	}
	for _, c := range cases {
		sub, err := parseSubscription("n", c.expr)
		if err != nil {
			t.Errorf("parseSubscription(%q): %v", c.expr, err)
			continue
		}
		if len(sub.Filters) != 1 {
			t.Errorf("parseSubscription(%q): %d filters, want 1", c.expr, len(sub.Filters))
			continue
		}
		f := sub.Filters[0]
		if f.Op != c.op {
			t.Errorf("parseSubscription(%q): op = %v, want %v", c.expr, f.Op, c.op)
		}
		if f.Right.Lit == nil || f.Right.Lit.F != c.val {
			t.Errorf("parseSubscription(%q): literal = %+v, want %v", c.expr, f.Right.Lit, c.val)
		}
		if f.Left.Col == nil || strings.Contains(f.Left.Col.Attr, " ") {
			t.Errorf("parseSubscription(%q): attr not trimmed: %+v", c.expr, f.Left.Col)
		}
	}
}

func TestParseSubscriptionErrors(t *testing.T) {
	for _, expr := range []string{
		"Station1:snowHeight>forty", // bad literal
		"Station1:>40",              // missing attribute
		"Station1:snowHeight!40",    // no operator
		"Station1:snowHeight",       // filter part without operator
		":snowHeight>40",            // empty stream name
		"",                          // empty everything
	} {
		if _, err := parseSubscription("n", expr); err == nil {
			t.Errorf("parseSubscription(%q): want error", expr)
		}
	}
}
