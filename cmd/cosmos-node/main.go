// Command cosmos-node runs one Pub/Sub broker node over TCP — the same
// routing code the embedded middleware uses, deployed as a standalone
// service. Configuration layers environment over config file over flags
// (internal/nodeconfig); logs are structured key=value lines on stderr
// (internal/logging); an optional ops HTTP listener serves /healthz,
// /metrics (Prometheus text format) and /debug/overlay.dot; SIGTERM drains
// the node's routing state off the overlay before closing (see OPS.md).
//
// Example (three shells):
//
//	cosmos-node -id 0 -listen :7000 -peers 1=localhost:7001 \
//	    -advertise Station1 -publish Station1 -ops-listen :8080
//	cosmos-node -id 1 -listen :7001 -peers 0=localhost:7000,2=localhost:7002
//	cosmos-node -id 2 -listen :7002 -peers 1=localhost:7001 \
//	    -subscribe 'Station1:snowHeight>40'
//
// Node 0 publishes synthetic snow readings once a second; node 2 receives
// only those exceeding the filter, with node 1 forwarding one copy per
// link and filtering as early as its routing tables allow. deploy/compose
// runs the same topology as three containers.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/logging"
	"repro/internal/nodeconfig"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "cosmos-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	cfg, err := nodeconfig.Load(args, os.LookupEnv, os.Stderr)
	if err != nil {
		return err
	}
	level, err := logging.ParseLevel(cfg.LogLevel)
	if err != nil {
		return err // unreachable: Validate already vetted the name
	}
	log := logging.New(os.Stderr, level).With("node", cfg.NodeID)

	svc, err := newService(cfg, log)
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		svc.Close()
		return err
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	log.Info("signal received, draining", "signal", sig.String())
	svc.Shutdown()
	return nil
}
