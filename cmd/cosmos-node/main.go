// Command cosmos-node runs one Pub/Sub broker node over TCP — the same
// routing code the embedded middleware uses, deployed as separate
// processes. Wire a small overlay by hand and watch advertisements,
// subscriptions and filtered data flow between machines.
//
// Example (three shells):
//
//	cosmos-node -id 0 -listen :7000 -peers 1=localhost:7001 \
//	    -advertise Station1 -publish Station1
//	cosmos-node -id 1 -listen :7001 -peers 0=localhost:7000,2=localhost:7002
//	cosmos-node -id 2 -listen :7002 -peers 1=localhost:7001 \
//	    -subscribe 'Station1:snowHeight>40'
//
// Node 0 publishes synthetic snow readings once a second; node 2 receives
// only those exceeding the filter, with node 1 forwarding one copy per
// link and filtering as early as its routing tables allow.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cosmos-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cosmos-node", flag.ContinueOnError)
	id := fs.Int("id", 0, "node ID")
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	peers := fs.String("peers", "", "overlay neighbors as id=addr[,id=addr...]")
	advertise := fs.String("advertise", "", "comma-separated stream names this node publishes")
	publish := fs.String("publish", "", "publish synthetic readings on this stream (1/sec)")
	subscribe := fs.String("subscribe", "", "subscription as stream[:attr>num] (also <, >=, <=)")
	period := fs.Duration("period", time.Second, "publish period")
	batchSize := fs.Int("batch-size", 0, "max envelopes per transport batch (0 = default 64)")
	flushWindow := fs.Duration("flush-window", 0, "how long a partial batch waits for more traffic (0 = default 1ms, negative = flush immediately)")
	queueDepth := fs.Int("queue-depth", 0, "per-peer send queue bound, both planes (0 = default 4096)")
	noBatching := fs.Bool("no-batching", false, "v1 framing: one wire message per envelope (for single-envelope peers)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	node, err := transport.NewNodeWith(topology.NodeID(*id), *listen, transport.Options{
		BatchSize:         *batchSize,
		FlushWindow:       *flushWindow,
		ControlQueueDepth: *queueDepth,
		DataQueueDepth:    *queueDepth,
		DisableBatching:   *noBatching,
	})
	if err != nil {
		return err
	}
	defer node.Close()
	fmt.Printf("node %d listening on %s\n", *id, node.Addr())

	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			idAddr := strings.SplitN(strings.TrimSpace(p), "=", 2)
			if len(idAddr) != 2 {
				return fmt.Errorf("bad peer %q (want id=addr)", p)
			}
			pid, err := strconv.Atoi(idAddr[0])
			if err != nil {
				return fmt.Errorf("bad peer id %q: %v", idAddr[0], err)
			}
			node.Connect(topology.NodeID(pid), idAddr[1])
			fmt.Printf("  neighbor %d at %s\n", pid, idAddr[1])
		}
	}
	// Give neighbors a moment to come up, then advertise.
	time.Sleep(500 * time.Millisecond)
	for _, name := range splitNonEmpty(*advertise) {
		node.Broker.Advertise(name)
		fmt.Printf("  advertised %s\n", name)
	}
	if *publish != "" && *advertise == "" {
		node.Broker.Advertise(*publish)
	}

	if *subscribe != "" {
		sub, err := parseSubscription(fmt.Sprintf("n%d", *id), *subscribe)
		if err != nil {
			return err
		}
		// Wait for advertisements to flood before subscribing.
		time.Sleep(time.Second)
		err = node.Broker.Subscribe(sub, func(_ *pubsub.Subscription, t stream.Tuple) {
			fmt.Printf("  [%s] ts=%d %v\n", t.Stream, t.Timestamp, t.Attrs)
		})
		if err != nil {
			return err
		}
		fmt.Printf("  subscribed: %s\n", sub)
	}

	stopCh := make(chan os.Signal, 1)
	signal.Notify(stopCh, os.Interrupt, syscall.SIGTERM)

	if *publish != "" {
		gen, err := trace.New(trace.Config{
			Stations:     4,
			Deployments:  1,
			PeriodMillis: period.Milliseconds(),
			Seed:         uint64(*id) + 1,
		})
		if err != nil {
			return err
		}
		ticker := time.NewTicker(*period)
		defer ticker.Stop()
		fmt.Printf("publishing on %s every %v (ctrl-c to stop)\n", *publish, *period)
		for {
			select {
			case <-ticker.C:
				for _, t := range gen.Next() {
					t.Stream = *publish
					node.Broker.Publish(t)
				}
				data, ctrl := node.SentBytes()
				fmt.Printf("  sent: %.0f data B, %.0f control B\n", data, ctrl)
			case <-stopCh:
				return nil
			}
		}
	}

	fmt.Println("running (ctrl-c to stop)")
	<-stopCh
	return nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseSubscription parses "stream" or "stream:attr OP number" with OP one
// of > >= < <=.
func parseSubscription(id, s string) (*pubsub.Subscription, error) {
	parts := strings.SplitN(s, ":", 2)
	sub := &pubsub.Subscription{ID: id, Streams: []string{strings.TrimSpace(parts[0])}}
	if len(parts) == 1 {
		return sub, nil
	}
	expr := strings.TrimSpace(parts[1])
	for _, op := range []struct {
		tok string
		op  query.Op
	}{{">=", query.Ge}, {"<=", query.Le}, {">", query.Gt}, {"<", query.Lt}} {
		if i := strings.Index(expr, op.tok); i > 0 {
			attr := strings.TrimSpace(expr[:i])
			v, err := strconv.ParseFloat(strings.TrimSpace(expr[i+len(op.tok):]), 64)
			if err != nil {
				return nil, fmt.Errorf("bad filter %q: %v", expr, err)
			}
			lit := stream.FloatVal(v)
			sub.Filters = append(sub.Filters, query.Predicate{
				Left:  query.Operand{Col: &query.ColRef{Attr: attr}},
				Op:    op.op,
				Right: query.Operand{Lit: &lit},
			})
			return sub, nil
		}
	}
	return nil, fmt.Errorf("bad filter %q (want attr OP number)", expr)
}
