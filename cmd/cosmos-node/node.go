package main

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/logging"
	"repro/internal/nodeconfig"
	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transport"
)

// service is one deployable cosmos-node: a transport node plus the ops
// surface (HTTP listener, readiness, graceful drain) wrapped around it.
// newService binds every listener, so addresses are known before Start;
// Start wires the overlay and begins publishing; Shutdown drains and closes.
type service struct {
	cfg *nodeconfig.Config
	log logging.Logger

	node *transport.Node
	ops  *opsServer // nil when ops-listen is empty

	// ready flips true once startup has observed the overlay state it was
	// waiting for: configured peers reachable and, for a subscriber, the
	// subscribed stream's advert flood arrived (the condition the old
	// hard-coded sleeps approximated). Readiness is observational — the
	// subscription itself is installed immediately, since
	// subscribe-before-advertise re-propagates correctly.
	ready atomic.Bool

	sub      *pubsub.Subscription // parsed subscription, nil if none
	stopCh   chan struct{}
	doneCh   chan struct{} // publisher/watcher goroutines exited
	shutDown atomic.Bool
}

func newService(cfg *nodeconfig.Config, log logging.Logger) (*service, error) {
	node, err := transport.NewNodeWith(topology.NodeID(cfg.NodeID), cfg.Listen, transport.Options{
		BatchSize:         cfg.BatchSize,
		FlushWindow:       cfg.FlushWindow,
		ControlQueueDepth: cfg.QueueDepth,
		DataQueueDepth:    cfg.QueueDepth,
		DisableBatching:   cfg.NoBatching,
		Logger:            log,
	})
	if err != nil {
		return nil, err
	}
	node.Broker.SetLogger(log)
	s := &service{
		cfg:    cfg,
		log:    log,
		node:   node,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	if cfg.Subscribe != "" {
		s.sub, err = parseSubscription(fmt.Sprintf("n%d", cfg.NodeID), cfg.Subscribe)
		if err != nil {
			_ = node.Close() //lint:errdrop constructor failure path; the config error is the one reported
			return nil, err
		}
	}
	if cfg.OpsListen != "" {
		s.ops, err = newOpsServer(s, cfg.OpsListen)
		if err != nil {
			_ = node.Close() //lint:errdrop constructor failure path; the listen error is the one reported
			return nil, err
		}
	}
	return s, nil
}

// Addr is the overlay listen address (resolved, so ":0" works in tests).
func (s *service) Addr() string { return s.node.Addr() }

// OpsAddr is the ops HTTP address, or "" when the ops server is disabled.
func (s *service) OpsAddr() string {
	if s.ops == nil {
		return ""
	}
	return s.ops.addr()
}

// Start wires the overlay and begins the node's work: connect configured
// peers, wait (bounded) for their listeners, install the subscription,
// advertise, start the synthetic publisher and the readiness watcher. It
// returns once the node is operational; readiness may still be pending.
func (s *service) Start() error {
	if s.ops != nil {
		s.ops.serve()
		s.log.Info("ops listening", "addr", s.ops.addr())
	}
	s.log.Info("node listening", "addr", s.node.Addr())

	for _, p := range s.cfg.Peers {
		s.node.Connect(topology.NodeID(p.ID), p.Addr)
		s.log.Info("peer configured", "peer", p.ID, "addr", p.Addr)
	}

	s.waitForPeers()

	// Subscribe before advertising: correct since advert arrival replays
	// recorded subscriptions toward the publisher (re-propagation), which
	// is exactly what the removed startup sleeps used to paper over.
	if s.sub != nil {
		err := s.node.Broker.Subscribe(s.sub, func(_ *pubsub.Subscription, t stream.Tuple) {
			s.log.Info("delivery", "stream", t.Stream, "ts", t.Timestamp, "attrs", formatAttrs(t))
		})
		if err != nil {
			return err
		}
		s.log.Info("subscribed", "expr", s.cfg.Subscribe)
	}

	streams := append([]string(nil), s.cfg.Advertise...)
	if s.cfg.Publish != "" && len(streams) == 0 {
		streams = []string{s.cfg.Publish}
	}
	for _, name := range streams {
		s.node.Broker.Advertise(name)
		s.log.Info("advertised", "stream", name)
	}

	go s.background()
	return nil
}

// waitForPeers probes each configured peer's TCP listener until reachable,
// bounded by peer-wait overall. Replaces the old fixed 500ms sleep: the node
// proceeds the moment its neighbors actually accept connections, and a peer
// that stays down only costs the bound (the send pipelines retry dialing on
// their own, so startup order never deadlocks).
func (s *service) waitForPeers() {
	if s.cfg.PeerWait <= 0 || len(s.cfg.Peers) == 0 {
		return
	}
	deadline := time.Now().Add(s.cfg.PeerWait)
	for _, p := range s.cfg.Peers {
		for {
			conn, err := net.DialTimeout("tcp", p.Addr, time.Second)
			if err == nil {
				//lint:errdrop reachability probe; the connection is discarded unused
				_ = conn.Close()
				s.log.Info("peer reachable", "peer", p.ID, "addr", p.Addr)
				break
			}
			if time.Now().After(deadline) {
				s.log.Warn("peer wait timed out, continuing", "peer", p.ID, "addr", p.Addr, "err", err)
				return
			}
			select {
			case <-s.stopCh:
				return
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
}

// background runs the readiness watcher and the synthetic publisher until
// Shutdown. One goroutine: the publisher tick doubles as the readiness poll
// interval's upper bound, and a subscriber-only node just polls.
func (s *service) background() {
	defer close(s.doneCh)

	var gen *trace.Generator
	var tick *time.Ticker
	if s.cfg.Publish != "" {
		g, err := trace.New(trace.Config{
			Stations:     4,
			Deployments:  1,
			PeriodMillis: s.cfg.Period.Milliseconds(),
			Seed:         uint64(s.cfg.NodeID) + 1,
		})
		if err != nil {
			s.log.Error("trace generator failed, not publishing", "err", err)
		} else {
			gen = g
			tick = time.NewTicker(s.cfg.Period)
			defer tick.Stop()
			s.log.Info("publishing", "stream", s.cfg.Publish, "period", s.cfg.Period.String())
		}
	}

	readyPoll := time.NewTicker(25 * time.Millisecond)
	defer readyPoll.Stop()
	readyCh := readyPoll.C
	var tickCh <-chan time.Time
	if tick != nil {
		tickCh = tick.C
	}
	for {
		select {
		case <-s.stopCh:
			return
		case <-readyCh:
			if s.updateReady() {
				readyPoll.Stop()
				readyCh = nil // done: a nil channel never fires
			}
		case <-tickCh:
			for _, t := range gen.Next() {
				t.Stream = s.cfg.Publish
				s.node.Broker.Publish(t)
			}
			if s.log.Enabled(logging.LevelDebug) {
				data, ctrl := s.node.SentBytes()
				s.log.Debug("tick", "data_bytes", int64(data), "control_bytes", int64(ctrl))
			}
		}
	}
}

// updateReady computes and records readiness; returns true once ready so the
// poll can stop. Ready means: every subscribed stream's advert has arrived
// (subscriber nodes), which is the overlay state data delivery depends on.
// Nodes with no subscription are ready as soon as startup finished.
func (s *service) updateReady() bool {
	if s.ready.Load() {
		return true
	}
	if s.sub != nil {
		for _, name := range s.sub.Streams {
			if !s.node.Broker.StreamAdvertised(name) {
				return false
			}
		}
		s.log.Info("ready", "reason", "subscribed streams advertised")
	} else {
		s.log.Info("ready", "reason", "startup complete")
	}
	s.ready.Store(true)
	return true
}

// Shutdown drains the node off the overlay and closes it: stop publishing,
// retract local subscriptions and withdraw adverts (Broker.Drain — the
// retraction/withdrawal floods remove this node's routing state from every
// survivor), flush the send pipelines so those floods are on the wire, then
// close sockets. The whole drain is bounded by drain-timeout; on timeout the
// node closes anyway (crash-equivalent, the overlay's chaos path handles it).
func (s *service) Shutdown() {
	if !s.shutDown.CompareAndSwap(false, true) {
		return
	}
	close(s.stopCh)
	<-s.doneCh

	done := make(chan struct{})
	go func() {
		s.node.Broker.Drain()
		s.node.Flush()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drained")
	case <-time.After(s.cfg.DrainTimeout):
		s.log.Warn("drain timed out, closing anyway", "timeout", s.cfg.DrainTimeout.String())
	}
	s.Close()
}

// Close releases listeners and connections without draining (Shutdown calls
// it last; tests use it directly for teardown).
func (s *service) Close() {
	if s.ops != nil {
		s.ops.close()
	}
	if err := s.node.Close(); err != nil {
		s.log.Warn("close", "err", err)
	}
}

// formatAttrs renders a delivered tuple's attributes name-sorted, so log
// lines are stable across runs.
func formatAttrs(t stream.Tuple) string {
	names := make([]string, 0, len(t.Attrs))
	for name := range t.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		v := t.Attrs[name]
		b.WriteString(name)
		b.WriteByte('=')
		if v.Type == stream.String {
			b.WriteString(v.S)
		} else {
			b.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
		}
	}
	return b.String()
}

// parseSubscription parses "stream" or "stream:attr OP number" with OP one
// of > >= < <=.
func parseSubscription(id, s string) (*pubsub.Subscription, error) {
	parts := strings.SplitN(s, ":", 2)
	name := strings.TrimSpace(parts[0])
	if name == "" {
		return nil, fmt.Errorf("bad subscription %q: empty stream name", s)
	}
	sub := &pubsub.Subscription{ID: id, Streams: []string{name}}
	if len(parts) == 1 {
		return sub, nil
	}
	expr := strings.TrimSpace(parts[1])
	for _, op := range []struct {
		tok string
		op  query.Op
	}{{">=", query.Ge}, {"<=", query.Le}, {">", query.Gt}, {"<", query.Lt}} {
		if i := strings.Index(expr, op.tok); i > 0 {
			attr := strings.TrimSpace(expr[:i])
			v, err := strconv.ParseFloat(strings.TrimSpace(expr[i+len(op.tok):]), 64)
			if err != nil {
				return nil, fmt.Errorf("bad filter %q: %v", expr, err)
			}
			lit := stream.FloatVal(v)
			sub.Filters = append(sub.Filters, query.Predicate{
				Left:  query.Operand{Col: &query.ColRef{Attr: attr}},
				Op:    op.op,
				Right: query.Operand{Lit: &lit},
			})
			return sub, nil
		}
	}
	return nil, fmt.Errorf("bad filter %q (want attr OP number)", expr)
}
