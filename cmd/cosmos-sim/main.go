// Command cosmos-sim regenerates the paper's evaluation figures (§4).
//
// Usage:
//
//	cosmos-sim -fig 6 -scale ci
//	cosmos-sim -fig all -scale medium
//	cosmos-sim -fig 11 -queries 250,1000,4000
//
// Each figure prints as a table of series against the x-axis, mirroring the
// rows the paper plots. Scales: ci (fast, default), medium, paper (the full
// 4096-node configuration — slow on one machine).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/prototype"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cosmos-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cosmos-sim", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, 10, 11, table2, or all")
	scale := fs.String("scale", "ci", "experiment scale: ci, medium, paper")
	k := fs.Int("k", 0, "cluster size parameter (0 = default 4)")
	vmax := fs.Int("vmax", 0, "coarsening budget (0 = default 100)")
	queries := fs.String("queries", "", "comma-separated query counts (overrides scale defaults)")
	rounds := fs.Int("rounds", 0, "adaptation rounds / arrival intervals (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var s sim.Scale
	switch *scale {
	case "ci":
		s = sim.ScaleCI
	case "medium":
		s = sim.ScaleMedium
	case "paper":
		s = sim.ScalePaper
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	opts := sim.ExperimentOptions{K: *k, VMax: *vmax, Rounds: *rounds}
	if *queries != "" {
		counts, err := parseInts(*queries)
		if err != nil {
			return err
		}
		opts.QueryCounts = counts
		if len(counts) > 0 {
			opts.Queries = counts[len(counts)-1]
		}
	}

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"6", "7", "8", "9", "10", "11"}
	}
	for _, f := range figs {
		if err := runFig(f, s, opts); err != nil {
			return fmt.Errorf("fig %s: %w", f, err)
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %v", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func runFig(fig string, s sim.Scale, opts sim.ExperimentOptions) error {
	if fig == "11" {
		return runFig11(opts)
	}
	w, err := sim.NewWorld(sim.ConfigFor(s))
	if err != nil {
		return err
	}
	start := time.Now()
	var tables []*metrics.Table
	switch fig {
	case "6":
		a, b, err := w.Fig6(opts)
		if err != nil {
			return err
		}
		tables = []*metrics.Table{a, b}
	case "7":
		a, b, err := w.Fig7(opts)
		if err != nil {
			return err
		}
		tables = []*metrics.Table{a, b}
	case "8":
		a, b, err := w.Fig8(opts)
		if err != nil {
			return err
		}
		tables = []*metrics.Table{a, b}
	case "9":
		a, b, err := w.Fig9(opts, nil)
		if err != nil {
			return err
		}
		tables = []*metrics.Table{a, b}
	case "10":
		a, b, migs, err := w.Fig10(opts)
		if err != nil {
			return err
		}
		tables = []*metrics.Table{a, b}
		defer func() {
			ratio := float64(migs["Remapping"]) / max(1, float64(migs["Adaptive"]))
			fmt.Printf("migrations: adaptive=%d remapping=%d (ratio %.1fx; paper reports ~7x)\n\n",
				migs["Adaptive"], migs["Remapping"], ratio)
		}()
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	for _, t := range tables {
		if err := t.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	fmt.Printf("(fig %s took %v)\n\n", fig, time.Since(start).Round(time.Millisecond))
	return nil
}

func runFig11(opts sim.ExperimentOptions) error {
	counts := opts.QueryCounts
	if len(counts) == 0 {
		counts = []int{250, 1000, 4000}
	}
	w, err := prototype.NewWorld(30, trace.DefaultConfig(), 3)
	if err != nil {
		return err
	}
	cost := &metrics.Table{Title: "Fig 11(a) Normalized comm. cost (over COSMOS)", XLabel: "#queries"}
	times := &metrics.Table{Title: "Fig 11(b) Normalized running time (over max)", XLabel: "#queries"}
	var cCos, cOp, tCos, tOp []float64
	for _, n := range counts {
		cost.XS = append(cost.XS, fmt.Sprint(n))
		times.XS = append(times.XS, fmt.Sprint(n))
		cqs, err := w.GenerateQueries(n, 9)
		if err != nil {
			return err
		}
		res, err := w.Run(cqs, 2)
		if err != nil {
			return err
		}
		cCos = append(cCos, res.CosmosCost)
		cOp = append(cOp, res.OpCost)
		tCos = append(tCos, float64(res.CosmosTime.Microseconds()))
		tOp = append(tOp, float64(res.OpTime.Microseconds()))
	}
	// Normalize as the paper does: costs over COSMOS, times over the max.
	normCos := make([]float64, len(cCos))
	normOp := make([]float64, len(cCos))
	for i := range cCos {
		normCos[i] = 1
		normOp[i] = cOp[i] / cCos[i]
	}
	maxT := metrics.Max(append(append([]float64(nil), tCos...), tOp...))
	cost.AddSeries("COSMOS", normCos)
	cost.AddSeries("Op placement", normOp)
	times.AddSeries("COSMOS", metrics.Normalize(tCos, maxT))
	times.AddSeries("Op placement", metrics.Normalize(tOp, maxT))
	for _, t := range []*metrics.Table{cost, times} {
		if err := t.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
