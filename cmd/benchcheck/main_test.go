package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkBrokerRoute/indexed-1000-2         	  300000	      4100 ns/op
BenchmarkBrokerRoute/indexed-1000-2         	  310000	      3950 ns/op
BenchmarkBrokerRoute/indexed-10000-2        	   50000	     21000 ns/op
BenchmarkFig6RunningTime-2                  	       5	 120000000 ns/op	        36.0 cen-ms
PASS
`

func TestParseBenchTakesMinAndStripsProcs(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkBrokerRoute/indexed-1000":  3950,
		"BenchmarkBrokerRoute/indexed-10000": 21000,
		"BenchmarkFig6RunningTime":           120000000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestCheckFlagsOnlyGrossRegressions(t *testing.T) {
	guard := map[string]guardEntry{
		"BenchmarkBrokerRoute/indexed-1000": {NsPerOp: 4000},
		"BenchmarkFig6RunningTime":          {NsPerOp: 115000000},
		"BenchmarkNotRun":                   {NsPerOp: 1},
	}
	observed := map[string]float64{
		"BenchmarkBrokerRoute/indexed-1000": 15000,     // 3.75x: inside 4x tolerance
		"BenchmarkFig6RunningTime":          700000000, // ~6x: regression
	}
	regressions, missing := check(guard, observed, 4.0)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "BenchmarkFig6RunningTime") {
		t.Fatalf("regressions = %v, want exactly the Fig6 entry", regressions)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkNotRun" {
		t.Fatalf("missing = %v, want [BenchmarkNotRun]", missing)
	}
}

func TestCheckPassesAtBaseline(t *testing.T) {
	guard := map[string]guardEntry{"BenchmarkX": {NsPerOp: 1000}}
	regressions, missing := check(guard, map[string]float64{"BenchmarkX": 1000}, 4.0)
	if len(regressions) != 0 || len(missing) != 0 {
		t.Fatalf("regressions=%v missing=%v, want none", regressions, missing)
	}
}
