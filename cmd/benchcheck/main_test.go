package main

import (
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkBrokerRoute/indexed-1000-2         	  300000	      4100 ns/op	    1500 B/op	       8 allocs/op
BenchmarkBrokerRoute/indexed-1000-2         	  310000	      3950 ns/op	    1474 B/op	       7 allocs/op
BenchmarkBrokerRoute/indexed-10000-2        	   50000	     21000 ns/op
BenchmarkFig6RunningTime-2                  	       5	 120000000 ns/op	        36.0 cen-ms
PASS
`

func parse(t *testing.T, text string) map[string]*observed {
	t.Helper()
	got := make(map[string]*observed)
	if err := parseBench(strings.NewReader(text), got); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseBenchTakesMinAndStripsProcs(t *testing.T) {
	got := parse(t, sampleOutput)
	want := map[string]float64{
		"BenchmarkBrokerRoute/indexed-1000":  3950,
		"BenchmarkBrokerRoute/indexed-10000": 21000,
		"BenchmarkFig6RunningTime":           120000000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, ns := range want {
		o := got[name]
		if o == nil || o.ns != ns {
			t.Errorf("%s = %+v, want ns %v", name, o, ns)
		}
	}
}

func TestParseBenchTracksMemoryMinima(t *testing.T) {
	got := parse(t, sampleOutput)
	o := got["BenchmarkBrokerRoute/indexed-1000"]
	if !o.hasMem || o.bytes != 1474 || o.allocs != 7 {
		t.Fatalf("memory minima = %+v, want 1474 B/op, 7 allocs/op", o)
	}
	if got["BenchmarkBrokerRoute/indexed-10000"].hasMem {
		t.Fatal("10000 variant has no -benchmem columns, hasMem should be false")
	}
	// A metric-only line must not disturb the ns minimum.
	if got["BenchmarkFig6RunningTime"].hasMem {
		t.Fatal("custom-metric line misparsed as memory columns")
	}
}

func TestCheckFlagsOnlyGrossRegressions(t *testing.T) {
	guard := map[string]guardEntry{
		"BenchmarkBrokerRoute/indexed-1000": {NsPerOp: 4000},
		"BenchmarkFig6RunningTime":          {NsPerOp: 115000000},
		"BenchmarkNotRun":                   {NsPerOp: 1},
	}
	obs := map[string]*observed{
		"BenchmarkBrokerRoute/indexed-1000": {ns: 15000},     // 3.75x: inside 4x tolerance
		"BenchmarkFig6RunningTime":          {ns: 700000000}, // ~6x: regression
	}
	regressions, missing, warnings := check(guard, obs, 4.0)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "BenchmarkFig6RunningTime") {
		t.Fatalf("regressions = %v, want exactly the Fig6 entry", regressions)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkNotRun" {
		t.Fatalf("missing = %v, want [BenchmarkNotRun]", missing)
	}
	if len(warnings) != 0 {
		t.Fatalf("warnings = %v, want none", warnings)
	}
}

func TestCheckGuardsMemoryMetrics(t *testing.T) {
	guard := map[string]guardEntry{
		"BenchmarkX": {NsPerOp: 1000, BPerOp: 100, AllocsPerOp: 10},
	}
	// Bytes regressed ~9x, allocs fine, ns fine.
	obs := map[string]*observed{
		"BenchmarkX": {ns: 1100, bytes: 900, allocs: 12, hasMem: true},
	}
	regressions, missing, warnings := check(guard, obs, 4.0)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "B/op") {
		t.Fatalf("regressions = %v, want exactly the B/op entry", regressions)
	}
	if len(missing) != 0 || len(warnings) != 0 {
		t.Fatalf("missing = %v, warnings = %v, want none", missing, warnings)
	}
	// Memory-guarded benchmark run without -benchmem: warn, don't fail —
	// the wall-time guard still applied, unlike a bench missing outright.
	obs["BenchmarkX"] = &observed{ns: 1100}
	regressions, missing, warnings = check(guard, obs, 4.0)
	if len(regressions) != 0 || len(missing) != 0 {
		t.Fatalf("regressions = %v, missing = %v, want none without -benchmem", regressions, missing)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "-benchmem") {
		t.Fatalf("warnings = %v, want the -benchmem hint", warnings)
	}
}

func TestCheckMemoryOnlyGuardSkipsNs(t *testing.T) {
	// A guard entry with no ns_per_op (memory-only) must not treat every
	// observed ns/op as exceeding a zero baseline.
	guard := map[string]guardEntry{"BenchmarkX": {BPerOp: 100}}
	obs := map[string]*observed{"BenchmarkX": {ns: 123456, bytes: 90, allocs: 3, hasMem: true}}
	regressions, missing, warnings := check(guard, obs, 4.0)
	if len(regressions) != 0 || len(missing) != 0 || len(warnings) != 0 {
		t.Fatalf("regressions=%v missing=%v warnings=%v, want none", regressions, missing, warnings)
	}
}

func TestCheckPassesAtBaseline(t *testing.T) {
	guard := map[string]guardEntry{"BenchmarkX": {NsPerOp: 1000}}
	obs := map[string]*observed{"BenchmarkX": {ns: 1000}}
	regressions, missing, warnings := check(guard, obs, 4.0)
	if len(regressions) != 0 || len(missing) != 0 || len(warnings) != 0 {
		t.Fatalf("regressions=%v missing=%v warnings=%v, want none", regressions, missing, warnings)
	}
}

// writeRunFixture lays down a baseline file guarding two benchmarks and a
// bench-output file containing only the first.
func writeRunFixture(t *testing.T) (baseline, bench string) {
	t.Helper()
	dir := t.TempDir()
	baseline = dir + "/baseline.json"
	bench = dir + "/bench.txt"
	if err := os.WriteFile(baseline, []byte(`{
		"guard": {
			"BenchmarkPresent": { "ns_per_op": 1000 },
			"BenchmarkRenamedAway": { "ns_per_op": 1000 }
		}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bench, []byte(
		"BenchmarkPresent-2   100   1200 ns/op\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return baseline, bench
}

// TestRunFailsOnGuardMissingFromInput: a guard entry naming a benchmark
// that appears in none of the inputs must FAIL the run — a renamed bench
// must not quietly disable its guard — unless the job explicitly declares
// it with -allow-missing.
func TestRunFailsOnGuardMissingFromInput(t *testing.T) {
	baseline, bench := writeRunFixture(t)
	err := run(baseline, 4.0, "", []string{bench})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkRenamedAway") {
		t.Fatalf("run = %v, want missing-guard failure naming BenchmarkRenamedAway", err)
	}
	// The declared-subset escape hatch turns exactly that name into a
	// warning.
	if err := run(baseline, 4.0, "^BenchmarkRenamedAway$", []string{bench}); err != nil {
		t.Fatalf("run with -allow-missing = %v, want success", err)
	}
	// A pattern that does not cover the absent name still fails.
	err = run(baseline, 4.0, "^BenchmarkSomethingElse$", []string{bench})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkRenamedAway") {
		t.Fatalf("run with non-matching -allow-missing = %v, want failure", err)
	}
	// An invalid pattern is reported, not ignored.
	if err := run(baseline, 4.0, "(", []string{bench}); err == nil {
		t.Fatal("run with invalid -allow-missing pattern succeeded")
	}
}

// TestRunRegressionStillBeatsMissing: when both a regression and a missing
// guard occur, the regression is reported (the more urgent signal), and the
// run fails either way.
func TestRunRegressionStillBeatsMissing(t *testing.T) {
	baseline, bench := writeRunFixture(t)
	if err := os.WriteFile(bench, []byte(
		"BenchmarkPresent-2   100   9000 ns/op\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(baseline, 4.0, "", []string{bench})
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("run = %v, want regression failure", err)
	}
}
