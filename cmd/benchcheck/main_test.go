package main

import (
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkBrokerRoute/indexed/subs=1000-2         	  300000	      4100 ns/op	    1500 B/op	       8 allocs/op
BenchmarkBrokerRoute/indexed/subs=1000-2         	  310000	      3950 ns/op	    1474 B/op	       7 allocs/op
BenchmarkBrokerRoute/indexed/subs=10000-2        	   50000	     21000 ns/op
BenchmarkFig6RunningTime-2                  	       5	 120000000 ns/op	        36.0 cen-ms
PASS
`

// sweepOutput is a -cpu 1,2,8 sweep: the suffix-less line is how the
// testing package prints GOMAXPROCS=1 (parseBench normalizes it to an
// explicit "-1" key).
const sweepOutput = `goos: linux
BenchmarkBrokerRouteParallel/subs=1000         	  200000	      3300 ns/op
BenchmarkBrokerRouteParallel/subs=1000-2       	  400000	      1800 ns/op
BenchmarkBrokerRouteParallel/subs=1000-2       	  400000	      1700 ns/op
BenchmarkBrokerRouteParallel/subs=1000-8       	 1000000	       600 ns/op
PASS
`

func parse(t *testing.T, text string) (map[string]*observed, map[string]map[string]bool) {
	t.Helper()
	got := make(map[string]*observed)
	variants := make(map[string]map[string]bool)
	if err := parseBench(strings.NewReader(text), got, variants); err != nil {
		t.Fatal(err)
	}
	return got, variants
}

// mkVariants derives the variants map for check() tests that construct
// their observations directly.
func mkVariants(obs map[string]*observed) map[string]map[string]bool {
	v := map[string]map[string]bool{}
	for k := range obs {
		base := cpuSuffix.ReplaceAllString(k, "")
		if v[base] == nil {
			v[base] = map[string]bool{}
		}
		v[base][k] = true
	}
	return v
}

func TestParseBenchTakesMinPerCPUKey(t *testing.T) {
	got, _ := parse(t, sampleOutput)
	want := map[string]float64{
		"BenchmarkBrokerRoute/indexed/subs=1000-2":  3950,
		"BenchmarkBrokerRoute/indexed/subs=10000-2": 21000,
		"BenchmarkFig6RunningTime-2":                120000000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, ns := range want {
		o := got[name]
		if o == nil || o.ns != ns {
			t.Errorf("%s = %+v, want ns %v", name, o, ns)
		}
	}
}

// TestParseKeysPerCPU: a -cpu sweep keeps each parallelism level as its
// own key — the minimum is never taken across cpu counts — and variants
// records every printing of a base name.
func TestParseKeysPerCPU(t *testing.T) {
	obs, variants := parse(t, sweepOutput)
	want := map[string]float64{
		"BenchmarkBrokerRouteParallel/subs=1000-1": 3300,
		"BenchmarkBrokerRouteParallel/subs=1000-2": 1700,
		"BenchmarkBrokerRouteParallel/subs=1000-8": 600,
	}
	for key, ns := range want {
		o := obs[key]
		if o == nil {
			t.Fatalf("no observation under %q", key)
		}
		if o.ns != ns {
			t.Errorf("%s: min %v ns/op, want %v", key, o.ns, ns)
		}
	}
	if n := len(variants["BenchmarkBrokerRouteParallel/subs=1000"]); n != 3 {
		t.Errorf("parallel bench has %d variants, want 3", n)
	}
}

func TestParseBenchTracksMemoryMinima(t *testing.T) {
	got, _ := parse(t, sampleOutput)
	o := got["BenchmarkBrokerRoute/indexed/subs=1000-2"]
	if !o.hasMem || o.bytes != 1474 || o.allocs != 7 {
		t.Fatalf("memory minima = %+v, want 1474 B/op, 7 allocs/op", o)
	}
	if got["BenchmarkBrokerRoute/indexed/subs=10000-2"].hasMem {
		t.Fatal("10000 variant has no -benchmem columns, hasMem should be false")
	}
	// A metric-only line must not disturb the ns minimum.
	if got["BenchmarkFig6RunningTime-2"].hasMem {
		t.Fatal("custom-metric line misparsed as memory columns")
	}
}

func TestCheckFlagsOnlyGrossRegressions(t *testing.T) {
	guard := map[string]guardEntry{
		"BenchmarkBrokerRoute/indexed/subs=1000": {NsPerOp: 4000},
		"BenchmarkFig6RunningTime":               {NsPerOp: 115000000},
		"BenchmarkNotRun":                        {NsPerOp: 1},
	}
	obs := map[string]*observed{
		"BenchmarkBrokerRoute/indexed/subs=1000-2": {ns: 15000},     // 3.75x: inside 4x tolerance
		"BenchmarkFig6RunningTime-2":               {ns: 700000000}, // ~6x: regression
	}
	regressions, missing, warnings, ambiguous := check(guard, obs, mkVariants(obs), 4.0)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "BenchmarkFig6RunningTime") {
		t.Fatalf("regressions = %v, want exactly the Fig6 entry", regressions)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkNotRun" {
		t.Fatalf("missing = %v, want [BenchmarkNotRun]", missing)
	}
	if len(warnings) != 0 || len(ambiguous) != 0 {
		t.Fatalf("warnings = %v, ambiguous = %v, want none", warnings, ambiguous)
	}
}

// TestCheckSuffixedGuards: per-cpu guard keys compare against their own
// cpu count's minimum, so a regression at one parallelism level fires
// even when another level is fast.
func TestCheckSuffixedGuards(t *testing.T) {
	obs, variants := parse(t, sweepOutput)
	guard := map[string]guardEntry{
		"BenchmarkBrokerRouteParallel/subs=1000-2": {NsPerOp: 1000}, // observed 1700 > 1000*1.5
		"BenchmarkBrokerRouteParallel/subs=1000-8": {NsPerOp: 500},  // observed 600 < 500*1.5
	}
	regressions, missing, warnings, ambiguous := check(guard, obs, variants, 1.5)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "subs=1000-2") {
		t.Errorf("regressions = %v, want exactly the -2 guard", regressions)
	}
	if len(missing)+len(warnings)+len(ambiguous) != 0 {
		t.Errorf("unexpected missing=%v warnings=%v ambiguous=%v", missing, warnings, ambiguous)
	}
}

// TestCheckAmbiguousSweep: a suffix-less guard over a multi-cpu sweep is
// a hard error naming the observed keys — it must not silently collapse
// the sweep into one minimum (the keying bug this scheme replaces).
func TestCheckAmbiguousSweep(t *testing.T) {
	obs, variants := parse(t, sweepOutput)
	guard := map[string]guardEntry{"BenchmarkBrokerRouteParallel/subs=1000": {NsPerOp: 5000}}
	regressions, missing, _, ambiguous := check(guard, obs, variants, 4.0)
	if len(ambiguous) != 1 {
		t.Fatalf("ambiguous = %v, want exactly one", ambiguous)
	}
	if !strings.Contains(ambiguous[0], "subs=1000-2") || !strings.Contains(ambiguous[0], "subs=1000-8") {
		t.Errorf("ambiguity message does not name the observed keys: %s", ambiguous[0])
	}
	if len(missing) != 0 || len(regressions) != 0 {
		t.Errorf("ambiguous guard also reported missing=%v regressions=%v", missing, regressions)
	}
}

// TestCheckMissingSuffixedGuard: a per-cpu guard whose cpu count never
// ran reports missing (the disabled-guard protection), not a silent pass.
func TestCheckMissingSuffixedGuard(t *testing.T) {
	obs, variants := parse(t, sweepOutput)
	guard := map[string]guardEntry{"BenchmarkBrokerRouteParallel/subs=1000-4": {NsPerOp: 1000}}
	_, missing, _, _ := check(guard, obs, variants, 4.0)
	if len(missing) != 1 || missing[0] != "BenchmarkBrokerRouteParallel/subs=1000-4" {
		t.Errorf("missing = %v, want the -4 guard", missing)
	}
}

func TestCheckGuardsMemoryMetrics(t *testing.T) {
	guard := map[string]guardEntry{
		"BenchmarkX": {NsPerOp: 1000, BPerOp: 100, AllocsPerOp: 10},
	}
	// Bytes regressed ~9x, allocs fine, ns fine.
	obs := map[string]*observed{
		"BenchmarkX": {ns: 1100, bytes: 900, allocs: 12, hasMem: true},
	}
	regressions, missing, warnings, _ := check(guard, obs, mkVariants(obs), 4.0)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "B/op") {
		t.Fatalf("regressions = %v, want exactly the B/op entry", regressions)
	}
	if len(missing) != 0 || len(warnings) != 0 {
		t.Fatalf("missing = %v, warnings = %v, want none", missing, warnings)
	}
	// Memory-guarded benchmark run without -benchmem: warn, don't fail —
	// the wall-time guard still applied, unlike a bench missing outright.
	obs["BenchmarkX"] = &observed{ns: 1100}
	regressions, missing, warnings, _ = check(guard, obs, mkVariants(obs), 4.0)
	if len(regressions) != 0 || len(missing) != 0 {
		t.Fatalf("regressions = %v, missing = %v, want none without -benchmem", regressions, missing)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "-benchmem") {
		t.Fatalf("warnings = %v, want the -benchmem hint", warnings)
	}
}

func TestCheckMemoryOnlyGuardSkipsNs(t *testing.T) {
	// A guard entry with no ns_per_op (memory-only) must not treat every
	// observed ns/op as exceeding a zero baseline.
	guard := map[string]guardEntry{"BenchmarkX": {BPerOp: 100}}
	obs := map[string]*observed{"BenchmarkX": {ns: 123456, bytes: 90, allocs: 3, hasMem: true}}
	regressions, missing, warnings, _ := check(guard, obs, mkVariants(obs), 4.0)
	if len(regressions) != 0 || len(missing) != 0 || len(warnings) != 0 {
		t.Fatalf("regressions=%v missing=%v warnings=%v, want none", regressions, missing, warnings)
	}
}

func TestCheckPassesAtBaseline(t *testing.T) {
	guard := map[string]guardEntry{"BenchmarkX": {NsPerOp: 1000}}
	obs := map[string]*observed{"BenchmarkX": {ns: 1000}}
	regressions, missing, warnings, _ := check(guard, obs, mkVariants(obs), 4.0)
	if len(regressions) != 0 || len(missing) != 0 || len(warnings) != 0 {
		t.Fatalf("regressions=%v missing=%v warnings=%v, want none", regressions, missing, warnings)
	}
}

// writeRunFixture lays down a baseline file guarding two benchmarks and a
// bench-output file containing only the first.
func writeRunFixture(t *testing.T) (baseline, bench string) {
	t.Helper()
	dir := t.TempDir()
	baseline = dir + "/baseline.json"
	bench = dir + "/bench.txt"
	if err := os.WriteFile(baseline, []byte(`{
		"guard": {
			"BenchmarkPresent": { "ns_per_op": 1000 },
			"BenchmarkRenamedAway": { "ns_per_op": 1000 }
		}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bench, []byte(
		"BenchmarkPresent-2   100   1200 ns/op\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return baseline, bench
}

// TestRunFailsOnGuardMissingFromInput: a guard entry naming a benchmark
// that appears in none of the inputs must FAIL the run — a renamed bench
// must not quietly disable its guard — unless the job explicitly declares
// it with -allow-missing.
func TestRunFailsOnGuardMissingFromInput(t *testing.T) {
	baseline, bench := writeRunFixture(t)
	err := run(baseline, 4.0, "", []string{bench})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkRenamedAway") {
		t.Fatalf("run = %v, want missing-guard failure naming BenchmarkRenamedAway", err)
	}
	// The declared-subset escape hatch turns exactly that name into a
	// warning.
	if err := run(baseline, 4.0, "^BenchmarkRenamedAway$", []string{bench}); err != nil {
		t.Fatalf("run with -allow-missing = %v, want success", err)
	}
	// A pattern that does not cover the absent name still fails.
	err = run(baseline, 4.0, "^BenchmarkSomethingElse$", []string{bench})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkRenamedAway") {
		t.Fatalf("run with non-matching -allow-missing = %v, want failure", err)
	}
	// An invalid pattern is reported, not ignored.
	if err := run(baseline, 4.0, "(", []string{bench}); err == nil {
		t.Fatal("run with invalid -allow-missing pattern succeeded")
	}
}

// TestRunRegressionStillBeatsMissing: when both a regression and a missing
// guard occur, the regression is reported (the more urgent signal), and the
// run fails either way.
func TestRunRegressionStillBeatsMissing(t *testing.T) {
	baseline, bench := writeRunFixture(t)
	if err := os.WriteFile(bench, []byte(
		"BenchmarkPresent-2   100   9000 ns/op\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(baseline, 4.0, "", []string{bench})
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("run = %v, want regression failure", err)
	}
}
