// Command benchcheck guards CI against gross benchmark regressions: it
// parses `go test -bench` output, takes the best (minimum) value per
// benchmark and metric across repetitions (-count > 1 recommended — the
// minimum is far less noisy than the mean on shared runners), and compares
// each guarded benchmark against the recorded baseline in
// BENCH_BASELINE.json with a generous tolerance multiplier.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkBrokerRoute -benchmem -count 2 . | tee bench.txt
//	go run ./cmd/benchcheck -baseline BENCH_BASELINE.json -tolerance 4 bench.txt
//
// The baseline file's top-level "guard" object maps benchmark names (as
// printed by the testing package) to {"ns_per_op": <recorded>} plus
// optionally {"b_per_op": <bytes>, "allocs_per_op": <allocs>} — the latter
// two require the bench job to run with -benchmem and guard the route-path
// allocation budget the same way wall time is guarded. A run fails when
// any observed minimum exceeds recorded*tolerance.
//
// Results are keyed INCLUDING the trailing -GOMAXPROCS suffix, so a
// `go test -cpu 1,2,4,8` sweep guards each parallelism level separately
// ("BenchmarkBrokerRouteParallel/subs=1000-8"). The testing package omits
// the suffix at GOMAXPROCS=1; those lines are normalized to an explicit
// "-1" key so a cpu-1 guard has a stable name in every lane. A suffix-less
// guard name still matches when the input observed exactly one cpu count
// for that benchmark — the single-count CI lanes keep their historical
// keys regardless of the runner's core count — but matching it against a
// multi-count sweep is ambiguous (which count would it guard?) and fails
// hard: per-cpu guards must use per-cpu keys.
//
// A guarded benchmark that appears in NONE of the input files is an error:
// a renamed or deleted benchmark must not quietly disable its guard. Jobs
// that intentionally run a subset declare the names they skip with
// -allow-missing (an anchored-at-will regular expression); only those may
// be absent, and they warn instead. A guarded MEMORY metric whose
// benchmark ran without -benchmem stays a warning — the wall-time guard
// still applied.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// guardEntry is one guarded benchmark in BENCH_BASELINE.json. Zero-valued
// metrics are unguarded.
type guardEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Note        string  `json:"note,omitempty"`
}

// observed holds the per-benchmark minima of each metric.
type observed struct {
	ns, bytes, allocs float64
	hasMem            bool
}

// benchLine matches one testing-package benchmark result line, e.g.
// "BenchmarkBrokerRoute/indexed/subs=1000-2   300000   3927 ns/op   12 B/op   3 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+)\s+ns/op(?:.*?\s([0-9.]+)\s+B/op\s+([0-9.]+)\s+allocs/op)?`)

// cpuSuffix recognizes a guard name that already pins one GOMAXPROCS.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts the per-benchmark metric minima from bench output,
// keyed by the full printed name (GOMAXPROCS suffix included — each cpu
// count of a -cpu sweep is its own result). variants records, per
// suffix-less base name, the full keys observed for it.
func parseBench(r io.Reader, into map[string]*observed, variants map[string]map[string]bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return fmt.Errorf("benchcheck: bad ns/op in %q: %w", sc.Text(), err)
		}
		suffix := m[2]
		if suffix == "" {
			suffix = "-1" // GOMAXPROCS=1: the testing package omits the suffix
		}
		key := m[1] + suffix
		if variants[m[1]] == nil {
			variants[m[1]] = map[string]bool{}
		}
		variants[m[1]][key] = true
		o := into[key]
		if o == nil {
			o = &observed{ns: ns, bytes: -1, allocs: -1}
			into[key] = o
		} else if ns < o.ns {
			o.ns = ns
		}
		if m[4] != "" {
			b, err1 := strconv.ParseFloat(m[4], 64)
			a, err2 := strconv.ParseFloat(m[5], 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("benchcheck: bad B/op or allocs/op in %q", sc.Text())
			}
			if !o.hasMem || b < o.bytes {
				o.bytes = b
			}
			if !o.hasMem || a < o.allocs {
				o.allocs = a
			}
			o.hasMem = true
		}
	}
	return sc.Err()
}

// check compares observed minima against the guard with the given
// tolerance multiplier, returning regression messages, the guarded
// benchmark names absent from the input (each one a disabled guard — the
// caller fails on them unless explicitly allowed), missing-metric
// warnings, and ambiguity errors (a suffix-less guard facing a multi-cpu
// sweep), all in sorted guard order.
func check(guard map[string]guardEntry, obs map[string]*observed, variants map[string]map[string]bool, tolerance float64) (regressions, missing, warnings, ambiguous []string) {
	names := make([]string, 0, len(guard))
	for name := range guard {
		names = append(names, name)
	}
	sort.Strings(names)
	exceed := func(name, metric string, got, base float64) {
		limit := base * tolerance
		if got > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f %s exceeds %.0f (baseline %.0f × tolerance %.1f)",
				name, got, metric, limit, base, tolerance))
		}
	}
	// resolve maps a guard name to its observation. A suffixed key is an
	// exact lookup; a suffix-less key (which is also the GOMAXPROCS=1
	// printing) resolves only when the input observed exactly one cpu count
	// for that benchmark — a multi-count sweep is ambiguous and must be
	// re-keyed per cpu.
	resolve := func(name string) (o *observed, isAmbiguous bool) {
		if cpuSuffix.MatchString(name) {
			return obs[name], false
		}
		vs := variants[name]
		if len(vs) > 1 {
			keys := make([]string, 0, len(vs))
			//lint:maporder keys are put into canonical order by sort.Strings below
			for k := range vs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			ambiguous = append(ambiguous, fmt.Sprintf(
				"%s: input holds %d cpu counts (%s) — a suffix-less guard cannot pick one; key the guard per cpu count (\"%s-N\")",
				name, len(vs), strings.Join(keys, ", "), name))
			return nil, true
		}
		for k := range vs {
			return obs[k], false
		}
		return nil, false
	}
	for _, name := range names {
		g := guard[name]
		o, isAmbiguous := resolve(name)
		if o == nil {
			if !isAmbiguous {
				missing = append(missing, name)
			}
			continue
		}
		if g.NsPerOp > 0 {
			exceed(name, "ns/op", o.ns, g.NsPerOp)
		}
		if g.BPerOp > 0 || g.AllocsPerOp > 0 {
			if !o.hasMem {
				warnings = append(warnings, name+" (B/op, allocs/op: run with -benchmem)")
				continue
			}
			if g.BPerOp > 0 {
				exceed(name, "B/op", o.bytes, g.BPerOp)
			}
			if g.AllocsPerOp > 0 {
				exceed(name, "allocs/op", o.allocs, g.AllocsPerOp)
			}
		}
	}
	return regressions, missing, warnings, ambiguous
}

func run(baselinePath string, tolerance float64, allowMissing string, inputs []string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline struct {
		Guard map[string]guardEntry `json:"guard"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("benchcheck: parse %s: %w", baselinePath, err)
	}
	if len(baseline.Guard) == 0 {
		return fmt.Errorf("benchcheck: %s has no guard entries", baselinePath)
	}
	var allowRe *regexp.Regexp
	if allowMissing != "" {
		allowRe, err = regexp.Compile(allowMissing)
		if err != nil {
			return fmt.Errorf("benchcheck: bad -allow-missing pattern: %w", err)
		}
	}
	obs := make(map[string]*observed)
	variants := make(map[string]map[string]bool)
	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = parseBench(f, obs, variants)
		f.Close()
		if err != nil {
			return err
		}
	}
	if len(obs) == 0 {
		return fmt.Errorf("benchcheck: no benchmark results found in %v", inputs)
	}
	regressions, missing, warnings, ambiguous := check(baseline.Guard, obs, variants, tolerance)
	var disabled []string
	for _, name := range missing {
		if allowRe != nil && allowRe.MatchString(name) {
			fmt.Printf("benchcheck: warning: guarded benchmark %s not in input (allowed by -allow-missing)\n", name)
			continue
		}
		fmt.Fprintf(os.Stderr, "benchcheck: MISSING: guarded benchmark %s appeared in none of the inputs — a renamed bench must not quietly disable its guard (declare intentional subsets with -allow-missing)\n", name)
		disabled = append(disabled, name)
	}
	for _, name := range warnings {
		fmt.Printf("benchcheck: warning: guarded benchmark %s not in input\n", name)
	}
	names := make([]string, 0, len(obs))
	for name := range obs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		status := "unguarded"
		g, ok := baseline.Guard[name]
		if !ok {
			// A suffix-less guard that resolved to this single observed cpu
			// count (the legacy keying) still reports as guarded.
			if base := cpuSuffix.ReplaceAllString(name, ""); len(variants[base]) == 1 {
				g, ok = baseline.Guard[base]
			}
		}
		if ok {
			var parts []string
			if g.NsPerOp > 0 {
				parts = append(parts, fmt.Sprintf("ns baseline %.0f, limit %.0f", g.NsPerOp, g.NsPerOp*tolerance))
			}
			if g.BPerOp > 0 {
				parts = append(parts, fmt.Sprintf("B baseline %.0f, limit %.0f", g.BPerOp, g.BPerOp*tolerance))
			}
			if g.AllocsPerOp > 0 {
				parts = append(parts, fmt.Sprintf("allocs baseline %.0f, limit %.0f", g.AllocsPerOp, g.AllocsPerOp*tolerance))
			}
			status = strings.Join(parts, "; ")
		}
		o := obs[name]
		mem := ""
		if o.hasMem {
			mem = fmt.Sprintf("  %8.0f B/op %6.0f allocs/op", o.bytes, o.allocs)
		}
		fmt.Printf("benchcheck: %-56s %12.0f ns/op%s  (%s)\n", name, o.ns, mem, status)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchcheck: REGRESSION: %s\n", r)
		}
		return fmt.Errorf("benchcheck: %d benchmark(s) regressed", len(regressions))
	}
	if len(ambiguous) > 0 {
		for _, a := range ambiguous {
			fmt.Fprintf(os.Stderr, "benchcheck: AMBIGUOUS: %s\n", a)
		}
		return fmt.Errorf("benchcheck: %d guard(s) ambiguous over a multi-cpu sweep", len(ambiguous))
	}
	if len(disabled) > 0 {
		return fmt.Errorf("benchcheck: %d guarded benchmark(s) missing from input: %s",
			len(disabled), strings.Join(disabled, ", "))
	}
	fmt.Println("benchcheck: all guarded benchmarks within tolerance")
	return nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON with a top-level guard object")
	tolerance := flag.Float64("tolerance", 4.0, "allowed slowdown multiplier over the recorded baseline")
	allowMissing := flag.String("allow-missing", "", "regexp of guarded benchmark names this job intentionally does not run (absent names not matching it fail the check)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-baseline file] [-tolerance x] [-allow-missing regexp] benchoutput...")
		os.Exit(2)
	}
	if err := run(*baseline, *tolerance, *allowMissing, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
