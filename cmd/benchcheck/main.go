// Command benchcheck guards CI against gross benchmark regressions: it
// parses `go test -bench` output, takes the best (minimum) ns/op per
// benchmark across repetitions (-count > 1 recommended — the minimum is
// far less noisy than the mean on shared runners), and compares each
// guarded benchmark against the recorded baseline in BENCH_BASELINE.json
// with a generous tolerance multiplier.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkBrokerRoute -count 2 . | tee bench.txt
//	go run ./cmd/benchcheck -baseline BENCH_BASELINE.json -tolerance 4 bench.txt
//
// The baseline file's top-level "guard" object maps benchmark names (as
// printed by the testing package, without the trailing -GOMAXPROCS
// suffix) to {"ns_per_op": <recorded>}. A run fails when the observed
// minimum exceeds recorded*tolerance. Guarded benchmarks absent from the
// input only warn: jobs may guard different subsets.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// guardEntry is one guarded benchmark in BENCH_BASELINE.json.
type guardEntry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Note    string  `json:"note,omitempty"`
}

// benchLine matches one testing-package benchmark result line, e.g.
// "BenchmarkBrokerRoute/indexed-1000-2   300000   3927 ns/op   12 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+)\s+ns/op`)

// parseBench extracts the minimum ns/op per benchmark name (the trailing
// -GOMAXPROCS suffix stripped) from bench output.
func parseBench(r io.Reader) (map[string]float64, error) {
	min := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcheck: bad ns/op in %q: %w", sc.Text(), err)
		}
		name := m[1]
		if cur, ok := min[name]; !ok || ns < cur {
			min[name] = ns
		}
	}
	return min, sc.Err()
}

// check compares observed minima against the guard with the given
// tolerance multiplier, returning regression messages and missing-bench
// warnings, both in sorted guard order.
func check(guard map[string]guardEntry, observed map[string]float64, tolerance float64) (regressions, missing []string) {
	names := make([]string, 0, len(guard))
	for name := range guard {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := guard[name]
		got, ok := observed[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		limit := g.NsPerOp * tolerance
		if got > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op exceeds %.0f (baseline %.0f × tolerance %.1f)",
				name, got, limit, g.NsPerOp, tolerance))
		}
	}
	return regressions, missing
}

func run(baselinePath string, tolerance float64, inputs []string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline struct {
		Guard map[string]guardEntry `json:"guard"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("benchcheck: parse %s: %w", baselinePath, err)
	}
	if len(baseline.Guard) == 0 {
		return fmt.Errorf("benchcheck: %s has no guard entries", baselinePath)
	}
	observed := make(map[string]float64)
	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		part, err := parseBench(f)
		f.Close()
		if err != nil {
			return err
		}
		for name, ns := range part {
			if cur, ok := observed[name]; !ok || ns < cur {
				observed[name] = ns
			}
		}
	}
	if len(observed) == 0 {
		return fmt.Errorf("benchcheck: no benchmark results found in %v", inputs)
	}
	regressions, missing := check(baseline.Guard, observed, tolerance)
	for _, name := range missing {
		fmt.Printf("benchcheck: warning: guarded benchmark %s not in input\n", name)
	}
	names := make([]string, 0, len(observed))
	for name := range observed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		status := "unguarded"
		if g, ok := baseline.Guard[name]; ok {
			status = fmt.Sprintf("baseline %.0f, limit %.0f", g.NsPerOp, g.NsPerOp*tolerance)
		}
		fmt.Printf("benchcheck: %-48s %12.0f ns/op  (%s)\n", name, observed[name], status)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchcheck: REGRESSION: %s\n", r)
		}
		return fmt.Errorf("benchcheck: %d benchmark(s) regressed", len(regressions))
	}
	fmt.Println("benchcheck: all guarded benchmarks within tolerance")
	return nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON with a top-level guard object")
	tolerance := flag.Float64("tolerance", 4.0, "allowed slowdown multiplier over the recorded baseline")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-baseline file] [-tolerance x] benchoutput...")
		os.Exit(2)
	}
	if err := run(*baseline, *tolerance, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
