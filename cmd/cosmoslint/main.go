// Command cosmoslint runs the repo's custom invariant analyzers (see
// LINT.md) over package patterns and exits non-zero on findings:
//
//	go run ./cmd/cosmoslint ./...          # what CI's lint job runs
//	go run ./cmd/cosmoslint -tests ./...   # nightly: test files too
//
// Exit codes: 0 clean, 1 findings, 2 operational failure (a package that
// does not build, a bad pattern). Findings are suppressed per line with
// `//lint:<analyzer> <reason>` annotations — see LINT.md for each
// analyzer's invariant and escape hatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis/checker"
)

func main() {
	tests := flag.Bool("tests", false, "analyze test package variants (includes _test.go files)")
	flag.Usage = usage
	flag.Parse()
	patterns := flag.Args()

	diags, err := checker.Run("", *tests, checker.Analyzers(), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmoslint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cosmoslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: cosmoslint [-tests] [packages]\n\nanalyzers:\n")
	for _, a := range checker.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}
