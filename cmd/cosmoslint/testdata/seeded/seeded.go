// Package seeded violates every cosmoslint analyzer exactly once. The
// cmd/cosmoslint test runs the real multichecker over this package and
// asserts each analyzer fires — the executable proof that a freshly
// introduced violation fails the CI lint step.
//
//cosmoslint:deterministic
package seeded

import (
	"encoding/gob"
	"math/rand"
	"sync"
)

type NodeID int

type Peer interface {
	RouteFrom(v int, from NodeID)
}

type Broker struct {
	// cosmoslint:guards
	mu    sync.Mutex
	peers map[NodeID]Peer
}

// maporder + lockdiscipline: a Peer send inside a map range, under the
// guarded mutex.
func (b *Broker) FloodUnderLock(v int) {
	b.mu.Lock()
	for _, p := range b.peers {
		p.RouteFrom(v, 0)
	}
	b.mu.Unlock()
}

var bufPool = sync.Pool{New: func() any { return new([]byte) }}
var keep *[]byte

// poolescape: the pooled buffer outlives the Put via a package variable.
func Borrow() {
	buf := bufPool.Get().(*[]byte)
	keep = buf
	bufPool.Put(buf)
}

// errdrop: a discarded gob encode error.
func Encode(enc *gob.Encoder, v any) {
	_ = enc.Encode(v)
}

// nondeterminism: a draw from the process-global rand source.
func Jitter() int {
	return rand.Intn(100)
}
