// Package clean exercises the same machinery as the seeded fixture —
// map ranges, a guarded mutex, a pool, wire encoding, randomness — in the
// compliant shapes. The cmd/cosmoslint test asserts zero findings.
//
//cosmoslint:deterministic
package clean

import (
	"encoding/gob"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
)

type NodeID int

type Peer interface {
	RouteFrom(v int, from NodeID)
}

type Broker struct {
	// cosmoslint:guards
	mu    sync.Mutex
	peers map[NodeID]Peer
}

// Flood decides under the lock and sends after, in sorted peer order.
func (b *Broker) Flood(v int) {
	b.mu.Lock()
	ids := make([]int, 0, len(b.peers))
	for id := range b.peers {
		ids = append(ids, int(id))
	}
	targets := make([]Peer, 0, len(ids))
	sort.Ints(ids)
	for _, id := range ids {
		targets = append(targets, b.peers[NodeID(id)])
	}
	b.mu.Unlock()
	for i, p := range targets {
		p.RouteFrom(v, NodeID(ids[i]))
	}
}

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// Borrow copies out of the pooled buffer before returning it.
func Borrow() []byte {
	buf := bufPool.Get().(*[]byte)
	out := make([]byte, len(*buf))
	copy(out, *buf)
	bufPool.Put(buf)
	return out
}

// Encode surfaces the encode error.
func Encode(enc *gob.Encoder, v any) error {
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	return nil
}

// Jitter draws from a seeded source.
func Jitter(seed uint64) int {
	rng := rand.New(rand.NewPCG(seed, 41))
	return rng.IntN(100)
}
