package main

import (
	"strings"
	"testing"

	"repro/internal/analysis/checker"
)

// TestSeededViolationsFail proves the CI lint step fails on new
// violations: the seeded fixture trips every analyzer in the suite
// through the same checker entry point the binary uses.
func TestSeededViolationsFail(t *testing.T) {
	diags, err := checker.Run("", false, checker.Analyzers(), "./testdata/seeded")
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Analyzer] = true
	}
	for _, a := range checker.Analyzers() {
		if !fired[a.Name] {
			var got []string
			for _, d := range diags {
				got = append(got, d.String())
			}
			t.Errorf("analyzer %s did not fire on the seeded fixture; findings:\n%s",
				a.Name, strings.Join(got, "\n"))
		}
	}
}

// TestCleanFixturePasses asserts the compliant shapes produce zero
// findings — the other half of red-then-green.
func TestCleanFixturePasses(t *testing.T) {
	diags, err := checker.Run("", false, checker.Analyzers(), "./testdata/clean")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding in clean fixture: %s", d)
	}
}

// TestSuiteNames pins the analyzer set: LINT.md documents exactly these.
func TestSuiteNames(t *testing.T) {
	want := []string{"maporder", "lockdiscipline", "poolescape", "errdrop", "nondeterminism"}
	as := checker.Analyzers()
	if len(as) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
	}
}
