// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4), plus ablations of the design choices DESIGN.md calls out. Each
// figure bench runs the corresponding experiment driver at CI scale and
// reports the headline quantities as custom metrics, so `go test -bench=.`
// reproduces the paper's rows without external tooling.
package cosmos

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"

	"repro/internal/adapt"
	"repro/internal/hierarchy"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/prototype"
	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/querygraph"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

func benchOpts() sim.ExperimentOptions {
	return sim.ExperimentOptions{
		K:           3,
		VMax:        40,
		QueryCounts: []int{200, 400},
		Queries:     400,
		Rounds:      4,
	}
}

func benchWorld(b *testing.B) *sim.World {
	b.Helper()
	w, err := sim.NewWorld(sim.ConfigFor(sim.ScaleCI))
	if err != nil {
		b.Fatalf("NewWorld: %v", err)
	}
	return w
}

func lastOf(tbl *metrics.Table, name string) float64 {
	for _, s := range tbl.Series {
		if s.Name == name && len(s.Values) > 0 {
			return s.Values[len(s.Values)-1]
		}
	}
	return 0
}

// BenchmarkTable2Mapping times Algorithm 2 on the paper's Fig 5 worked
// example (Table 2).
func BenchmarkTable2Mapping(b *testing.B) {
	w := benchWorld(b)
	wl, err := w.GenerateWorkload(4)
	if err != nil {
		b.Fatal(err)
	}
	qg, ng, err := w.GlobalGraphs(wl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mapping.NewMapper(qg, ng, mapping.Options{})
		if _, err := m.Map(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6CommCost regenerates Fig 6(a): initial distribution quality
// for the four schemes. Reported metrics are the largest-workload costs
// normalized over Centralized.
func BenchmarkFig6CommCost(b *testing.B) {
	w := benchWorld(b)
	var cost *metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		cost, _, err = w.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	cen := lastOf(cost, "Centralized")
	b.ReportMetric(lastOf(cost, "Naive")/cen, "naive/cen")
	b.ReportMetric(lastOf(cost, "Greedy")/cen, "greedy/cen")
	b.ReportMetric(lastOf(cost, "Hierarchical")/cen, "hier/cen")
}

// BenchmarkFig6RunningTime regenerates Fig 6(b): optimizer running times.
func BenchmarkFig6RunningTime(b *testing.B) {
	w := benchWorld(b)
	var times *metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, times, err = w.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastOf(times, "Cen.Total"), "cen-ms")
	b.ReportMetric(lastOf(times, "Hie.Total"), "hie-total-ms")
	b.ReportMetric(lastOf(times, "Hie.Response"), "hie-resp-ms")
}

// BenchmarkFig7Adaptation regenerates Fig 7: adapting to inaccurate
// statistics. Metrics: final cost of each scheme relative to A-Accurate.
func BenchmarkFig7Adaptation(b *testing.B) {
	w := benchWorld(b)
	var cost *metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		cost, _, err = w.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	acc := lastOf(cost, "A-Accurate")
	b.ReportMetric(lastOf(cost, "NA-Inaccurate")/acc, "noadapt/accurate")
	b.ReportMetric(lastOf(cost, "A-Inaccurate")/acc, "adapt/accurate")
}

// BenchmarkFig8NewQueries regenerates Fig 8: online query arrival.
func BenchmarkFig8NewQueries(b *testing.B) {
	w := benchWorld(b)
	opts := benchOpts()
	opts.BatchPerInterval = 40
	var cost *metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		cost, _, err = w.Fig8(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	oa := lastOf(cost, "Online-Adaptive")
	b.ReportMetric(lastOf(cost, "Random")/oa, "random/onlineadaptive")
	b.ReportMetric(lastOf(cost, "Online")/oa, "online/onlineadaptive")
}

// BenchmarkFig9ClusterSize regenerates Fig 9: cost and root throughput
// versus the cluster size parameter k.
func BenchmarkFig9ClusterSize(b *testing.B) {
	w := benchWorld(b)
	var cost, thr *metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		cost, thr, err = w.Fig9(benchOpts(), []int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	cs := cost.Series[0].Values
	ts := thr.Series[0].Values
	b.ReportMetric(cs[0]/cs[len(cs)-1], "cost-k2/k8")
	b.ReportMetric(ts[0]/ts[len(ts)-1], "thr-k2/k8")
}

// BenchmarkFig10Perturbation regenerates Fig 10: adapting to stream-rate
// changes. Metrics: migration ratio of Remapping over Adaptive (paper: ~7x)
// and final deviation ratio of No-Adaptive over Adaptive.
func BenchmarkFig10Perturbation(b *testing.B) {
	w := benchWorld(b)
	var dev *metrics.Table
	var migs map[string]int
	for i := 0; i < b.N; i++ {
		var err error
		_, dev, migs, err = w.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if migs["Adaptive"] > 0 {
		b.ReportMetric(float64(migs["Remapping"])/float64(migs["Adaptive"]), "remapMigs/adaptMigs")
	}
	b.ReportMetric(lastOf(dev, "No-Adaptive")/lastOf(dev, "Adaptive"), "noadaptDev/adaptDev")
}

// BenchmarkFig11Prototype regenerates Fig 11: COSMOS versus operator
// placement on plan cost and optimizer time.
func BenchmarkFig11Prototype(b *testing.B) {
	w, err := prototype.NewWorld(30, trace.DefaultConfig(), 3)
	if err != nil {
		b.Fatal(err)
	}
	cqs, err := w.GenerateQueries(250, 9)
	if err != nil {
		b.Fatal(err)
	}
	var res *prototype.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = w.Run(cqs, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OpCost/res.CosmosCost, "opCost/cosmosCost")
	b.ReportMetric(float64(res.OpTime)/float64(res.CosmosTime), "opTime/cosmosTime")
}

// BenchmarkHierDistribute times one full hierarchical initial distribution
// (upward coarsening + downward mapping) at CI scale — the per-coordinator
// work whose sum Fig 6(b) reports as Hie.Total.
func BenchmarkHierDistribute(b *testing.B) {
	w := benchWorld(b)
	wl, err := w.GenerateWorkload(400)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := hierarchy.Build(w.Oracle, w.Processors, nil, hierarchy.Config{K: 3, VMax: 40, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Distribute(wl.Queries, wl.SubRates, wl.SourceOfSub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineInsertThroughput measures the root coordinator's query
// routing rate (§3.6; the paper reports >800k queries/sec on 2008 hardware
// with its representation).
func BenchmarkOnlineInsertThroughput(b *testing.B) {
	w := benchWorld(b)
	wl, err := w.GenerateWorkload(400)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := hierarchy.Build(w.Oracle, w.Processors, nil, hierarchy.Config{K: 3, VMax: 40, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tree.Distribute(wl.Queries, wl.SubRates, wl.SourceOfSub); err != nil {
		b.Fatal(err)
	}
	probes := make([]querygraph.QueryInfo, 256)
	for i := range probes {
		probes[i] = wl.NewQuery(w.Processors)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.RouteAtRoot(probes[i%len(probes)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBrokerRoute measures broker-side matching throughput — the
// Pub/Sub hot path every routed tuple pays. A publisher broker forwards to a
// neighbor holding N recorded subscriptions, which then matches the tuple
// against its N local client subscriptions, so each operation pays two full
// matching passes. Subscriptions spread over 64 streams with pairwise
// non-covering interval filters; "indexed" uses the inverted matching index,
// "linear" the retained reference matcher (the pre-index baseline).
func BenchmarkBrokerRoute(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, mode := range []struct {
			name   string
			linear bool
		}{{"indexed", false}, {"linear", true}} {
			// '=' instead of '-' before the count: a trailing
			// "-<digits>" in a sub-benchmark name is indistinguishable
			// from the -GOMAXPROCS suffix (omitted on 1-CPU runners)
			// in bench output, which would make cmd/benchcheck
			// collapse the count variants into one entry.
			b.Run(fmt.Sprintf("%s/subs=%d", mode.name, n), func(b *testing.B) {
				benchBrokerRoute(b, n, mode.linear)
			})
		}
	}
}

func benchBrokerRoute(b *testing.B, nSubs int, linear bool) {
	g := topology.NewGraph(2)
	if err := g.AddEdge(0, 1, 1); err != nil {
		b.Fatal(err)
	}
	net, err := pubsub.NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	src, _ := net.Broker(0)
	dst, _ := net.Broker(1)
	const streams = 64
	streamName := func(s int) string { return fmt.Sprintf("S%02d", s) }
	for s := 0; s < streams; s++ {
		src.Advertise(streamName(s))
	}
	mkFilter := func(attr string, op query.Op, v float64) query.Predicate {
		lit := stream.FloatVal(v)
		return query.Predicate{
			Left:  query.Operand{Col: &query.ColRef{Attr: attr}},
			Op:    op,
			Right: query.Operand{Lit: &lit},
		}
	}
	delivered := 0
	for i := 0; i < nSubs; i++ {
		// Per stream, strictly increasing half-open windows [k, k+2): no
		// subscription covers another, so all N propagate and stay
		// recorded at the publisher.
		k := float64(i / streams)
		sub := &pubsub.Subscription{
			ID:      fmt.Sprintf("s%d", i),
			Streams: []string{streamName(i % streams)},
			Filters: []query.Predicate{
				mkFilter("a", query.Ge, k),
				mkFilter("a", query.Lt, k+2),
			},
		}
		if i%2 == 0 {
			sub.Attrs = []string{"a", "b"}
		}
		if err := dst.Subscribe(sub, func(*pubsub.Subscription, stream.Tuple) { delivered++ }); err != nil {
			b.Fatal(err)
		}
	}
	if linear {
		net.SetLinearMatching(true)
	}
	windows := nSubs/streams + 2
	// Warm-up: one tuple per stream, so the lazily built attribute-prune
	// indexes exist before timing starts and short -benchtime runs (CI
	// uses 100x) measure the steady state, not the one-time builds.
	for s := 0; s < streams; s++ {
		src.Publish(stream.Tuple{
			Stream: streamName(s),
			Attrs:  map[string]stream.Value{"a": stream.FloatVal(0), "b": stream.FloatVal(1)},
			Size:   32,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := stream.Tuple{
			Stream: streamName(i % streams),
			Attrs: map[string]stream.Value{
				"a": stream.FloatVal(float64(i % windows)),
				"b": stream.FloatVal(1),
			},
			Size: 32,
		}
		src.Publish(t)
	}
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("no deliveries: benchmark not exercising the match path")
	}
}

// BenchmarkBrokerRouteParallel drives the BenchmarkBrokerRoute topology
// from b.RunParallel: every goroutine publishes concurrently from the same
// source broker, so all routes contend on one broker's matching state.
// With the snapshot read path this is lock-free and should scale with cpu
// count; any residual serialization on the route path shows up as flat
// ns/op across -cpu. Run with -cpu 1,2,4,8 to record the scaling profile —
// cmd/benchcheck keys every cpu count separately (".../subs=1000-8"), so
// the nightly multi-core lane guards each level on its own baseline. The
// 1-vCPU historical-CI numbers stay comparable to BenchmarkBrokerRoute's
// indexed mode (same topology, same match work, one publisher).
func BenchmarkBrokerRouteParallel(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			benchBrokerRouteParallel(b, n)
		})
	}
}

func benchBrokerRouteParallel(b *testing.B, nSubs int) {
	g := topology.NewGraph(2)
	if err := g.AddEdge(0, 1, 1); err != nil {
		b.Fatal(err)
	}
	net, err := pubsub.NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	src, _ := net.Broker(0)
	dst, _ := net.Broker(1)
	const streams = 64
	streamName := func(s int) string { return fmt.Sprintf("S%02d", s) }
	for s := 0; s < streams; s++ {
		src.Advertise(streamName(s))
	}
	mkFilter := func(attr string, op query.Op, v float64) query.Predicate {
		lit := stream.FloatVal(v)
		return query.Predicate{
			Left:  query.Operand{Col: &query.ColRef{Attr: attr}},
			Op:    op,
			Right: query.Operand{Lit: &lit},
		}
	}
	var delivered atomic.Int64
	for i := 0; i < nSubs; i++ {
		k := float64(i / streams)
		sub := &pubsub.Subscription{
			ID:      fmt.Sprintf("s%d", i),
			Streams: []string{streamName(i % streams)},
			Filters: []query.Predicate{
				mkFilter("a", query.Ge, k),
				mkFilter("a", query.Lt, k+2),
			},
		}
		if i%2 == 0 {
			sub.Attrs = []string{"a", "b"}
		}
		if err := dst.Subscribe(sub, func(*pubsub.Subscription, stream.Tuple) { delivered.Add(1) }); err != nil {
			b.Fatal(err)
		}
	}
	windows := nSubs/streams + 2
	for s := 0; s < streams; s++ {
		src.Publish(stream.Tuple{
			Stream: streamName(s),
			Attrs:  map[string]stream.Value{"a": stream.FloatVal(0), "b": stream.FloatVal(1)},
			Size:   32,
		})
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Offset each goroutine's walk so concurrent publishers spread over
		// different streams and window positions instead of marching in
		// lockstep.
		i := int(seq.Add(1)) * 1000003
		for pb.Next() {
			t := stream.Tuple{
				Stream: streamName(i % streams),
				Attrs: map[string]stream.Value{
					"a": stream.FloatVal(float64(i % windows)),
					"b": stream.FloatVal(1),
				},
				Size: 32,
			}
			src.Publish(t)
			i++
		}
	})
	b.StopTimer()
	if delivered.Load() == 0 {
		b.Fatal("no deliveries: benchmark not exercising the match path")
	}
}

// BenchmarkBrokerRouteSelectivity measures attribute-level candidate
// pruning against the unpruned posting-list scan at controlled matching
// fractions: 10k subscriptions on ONE stream (so the posting list bounds
// nothing and candidate selection is the whole game), each with a
// half-open window filter [i, i+w) whose width w sets the fraction of the
// population a tuple matches (0.1%, 1%, 10%). "pruned" is the production
// matcher (interval-stabbing candidate selection); "unpruned" evaluates
// every posting-list candidate — the PR 2/3 indexed matcher, retained via
// SetAttrPruning(false). Run with -benchmem: the route path is also the
// allocation hot path.
func BenchmarkBrokerRouteSelectivity(b *testing.B) {
	const nSubs = 10000
	for _, mode := range []struct {
		name  string
		prune bool
	}{{"pruned", true}, {"unpruned", false}} {
		for _, sel := range []struct {
			name  string
			width int
		}{{"sel=0.1pct", 10}, {"sel=1pct", 100}, {"sel=10pct", 1000}} {
			b.Run(mode.name+"/"+sel.name, func(b *testing.B) {
				benchBrokerRouteSelectivity(b, nSubs, sel.width, mode.prune)
			})
		}
	}
}

func benchBrokerRouteSelectivity(b *testing.B, nSubs, width int, prune bool) {
	g := topology.NewGraph(2)
	if err := g.AddEdge(0, 1, 1); err != nil {
		b.Fatal(err)
	}
	net, err := pubsub.NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	net.SetAttrPruning(prune)
	src, _ := net.Broker(0)
	dst, _ := net.Broker(1)
	src.Advertise("S")
	mkFilter := func(op query.Op, v float64) query.Predicate {
		lit := stream.FloatVal(v)
		return query.Predicate{
			Left:  query.Operand{Col: &query.ColRef{Attr: "a"}},
			Op:    op,
			Right: query.Operand{Lit: &lit},
		}
	}
	delivered := 0
	for i := 0; i < nSubs; i++ {
		// Equal-width shifted windows [i, i+w): no subscription covers
		// another, so all N propagate; a tuple value hits ~w of them.
		k := float64(i)
		sub := &pubsub.Subscription{
			ID:      fmt.Sprintf("s%d", i),
			Streams: []string{"S"},
			Filters: []query.Predicate{mkFilter(query.Ge, k), mkFilter(query.Lt, k+float64(width))},
		}
		if i%2 == 0 {
			sub.Attrs = []string{"a", "b"}
		}
		if err := dst.Subscribe(sub, func(*pubsub.Subscription, stream.Tuple) { delivered++ }); err != nil {
			b.Fatal(err)
		}
	}
	// Warm-up: build the lazy prune indexes before timing (see
	// benchBrokerRoute).
	src.Publish(stream.Tuple{
		Stream: "S",
		Attrs:  map[string]stream.Value{"a": stream.FloatVal(0), "b": stream.FloatVal(1)},
		Size:   32,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := stream.Tuple{
			Stream: "S",
			Attrs: map[string]stream.Value{
				"a": stream.FloatVal(float64(i % nSubs)),
				"b": stream.FloatVal(1),
			},
			Size: 32,
		}
		src.Publish(t)
	}
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("no deliveries: benchmark not exercising the match path")
	}
}

// BenchmarkBrokerChurn measures the routing-state lifecycle cost — the
// control-path work a dynamic workload pays per subscription change. Each
// operation is one Subscribe (propagation + recording at both brokers) plus
// one Unsubscribe (retraction along the path, with the un-suppression scan
// over the surviving population) against a broker pair preloaded with N
// stable subscriptions over 64 streams.
func BenchmarkBrokerChurn(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			benchBrokerChurn(b, n)
		})
	}
}

func benchBrokerChurn(b *testing.B, nSubs int) {
	g := topology.NewGraph(2)
	if err := g.AddEdge(0, 1, 1); err != nil {
		b.Fatal(err)
	}
	net, err := pubsub.NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	src, _ := net.Broker(0)
	dst, _ := net.Broker(1)
	const streams = 64
	streamName := func(s int) string { return fmt.Sprintf("S%02d", s) }
	for s := 0; s < streams; s++ {
		src.Advertise(streamName(s))
	}
	mkFilter := func(op query.Op, v float64) query.Predicate {
		lit := stream.FloatVal(v)
		return query.Predicate{
			Left:  query.Operand{Col: &query.ColRef{Attr: "a"}},
			Op:    op,
			Right: query.Operand{Lit: &lit},
		}
	}
	// Stable population: pairwise non-covering window filters, so every
	// subscription propagates and stays recorded at the publisher.
	for i := 0; i < nSubs; i++ {
		k := float64(i / streams)
		sub := &pubsub.Subscription{
			ID:      fmt.Sprintf("s%d", i),
			Streams: []string{streamName(i % streams)},
			Filters: []query.Predicate{mkFilter(query.Ge, k), mkFilter(query.Lt, k+2)},
		}
		if err := dst.Subscribe(sub, func(*pubsub.Subscription, stream.Tuple) {}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A window beyond the stable population: covered by nothing,
		// covering nothing.
		k := float64(nSubs/streams + 10 + i%7)
		sub := &pubsub.Subscription{
			ID:      "churn",
			Streams: []string{streamName(i % streams)},
			Filters: []query.Predicate{mkFilter(query.Ge, k), mkFilter(query.Lt, k+2)},
		}
		if err := dst.Subscribe(sub, func(*pubsub.Subscription, stream.Tuple) {}); err != nil {
			b.Fatal(err)
		}
		dst.Unsubscribe("churn")
	}
	b.StopTimer()
	if remote, _ := src.RoutingStateSize(); remote != nSubs {
		b.Fatalf("publisher records %d subscriptions after churn, want %d", remote, nSubs)
	}
}

// BenchmarkBrokerAdvertChurn measures the teardown-lifecycle cost of one
// stream register/unregister cycle against a broker pair preloaded with N
// stable subscriptions on OTHER streams. Each operation is one Unadvertise
// (the withdrawal flood prunes the churned stream's 32 subscription records
// at the publisher and clears the subscribers' propagation marks, with
// covered-by re-decision) plus one Advertise (the re-advert replays those
// 32 subscriptions toward the publisher, which re-records them). The
// posting-list-driven prune and replay touch only the churned stream's
// subscriptions, so the cycle cost scales with that stream's population,
// not with the stable one.
func BenchmarkBrokerAdvertChurn(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			benchBrokerAdvertChurn(b, n)
		})
	}
}

func benchBrokerAdvertChurn(b *testing.B, nSubs int) {
	g := topology.NewGraph(2)
	if err := g.AddEdge(0, 1, 1); err != nil {
		b.Fatal(err)
	}
	net, err := pubsub.NewNetwork(topology.NewOracle(g), []topology.NodeID{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	src, _ := net.Broker(0)
	dst, _ := net.Broker(1)
	const streams = 64
	const churnSubs = 32
	streamName := func(s int) string { return fmt.Sprintf("S%02d", s) }
	for s := 0; s < streams; s++ {
		src.Advertise(streamName(s))
	}
	src.Advertise("C")
	mkFilter := func(op query.Op, v float64) query.Predicate {
		lit := stream.FloatVal(v)
		return query.Predicate{
			Left:  query.Operand{Col: &query.ColRef{Attr: "a"}},
			Op:    op,
			Right: query.Operand{Lit: &lit},
		}
	}
	// Stable population on the 64 side streams, plus churnSubs
	// subscriptions on the churned stream C — all pairwise non-covering
	// window filters, so everything propagates and stays recorded.
	for i := 0; i < nSubs; i++ {
		k := float64(i / streams)
		sub := &pubsub.Subscription{
			ID:      fmt.Sprintf("s%d", i),
			Streams: []string{streamName(i % streams)},
			Filters: []query.Predicate{mkFilter(query.Ge, k), mkFilter(query.Lt, k+2)},
		}
		if err := dst.Subscribe(sub, func(*pubsub.Subscription, stream.Tuple) {}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < churnSubs; i++ {
		k := float64(i)
		sub := &pubsub.Subscription{
			ID:      fmt.Sprintf("c%d", i),
			Streams: []string{"C"},
			Filters: []query.Predicate{mkFilter(query.Ge, k), mkFilter(query.Lt, k+2)},
		}
		if err := dst.Subscribe(sub, func(*pubsub.Subscription, stream.Tuple) {}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Unadvertise("C")
		src.Advertise("C")
	}
	b.StopTimer()
	if remote, _ := src.RoutingStateSize(); remote != nSubs+churnSubs {
		b.Fatalf("publisher records %d subscriptions after advert churn, want %d", remote, nSubs+churnSubs)
	}
}

// BenchmarkFig6RunningTimeMedium reruns the Fig 6 experiment at
// ScaleMedium (4000 substreams / 96 processors) — the configuration the
// nightly workflow sweeps. One iteration is a full multi-minute sweep, so
// the benchmark skips unless COSMOS_BENCH_MEDIUM is set; the nightly bench
// job sets it and guards the result against BENCH_BASELINE.json, which is
// where the promoted ScaleMedium numbers live.
func BenchmarkFig6RunningTimeMedium(b *testing.B) {
	if os.Getenv("COSMOS_BENCH_MEDIUM") == "" {
		b.Skip("set COSMOS_BENCH_MEDIUM=1 (nightly bench job) to run the ScaleMedium sweep")
	}
	w, err := sim.NewWorld(sim.ConfigFor(sim.ScaleMedium))
	if err != nil {
		b.Fatalf("NewWorld: %v", err)
	}
	var cost, times *metrics.Table
	for i := 0; i < b.N; i++ {
		cost, times, err = w.Fig6(sim.ExperimentOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	cen := lastOf(cost, "Centralized")
	b.ReportMetric(lastOf(cost, "Naive")/cen, "naive/cen")
	b.ReportMetric(lastOf(cost, "Greedy")/cen, "greedy/cen")
	b.ReportMetric(lastOf(cost, "Hierarchical")/cen, "hier/cen")
	b.ReportMetric(lastOf(times, "Cen.Total"), "cen-ms")
	b.ReportMetric(lastOf(times, "Hie.Total"), "hie-total-ms")
	b.ReportMetric(lastOf(times, "Hie.Response"), "hie-resp-ms")
}

// BenchmarkAblationOverlapEdges quantifies the overlap-edge model component
// (§3.1.2): mapping quality with and without query-query edges.
func BenchmarkAblationOverlapEdges(b *testing.B) {
	w := benchWorld(b)
	wl, err := w.GenerateWorkload(400)
	if err != nil {
		b.Fatal(err)
	}
	var withCost, withoutCost float64
	for i := 0; i < b.N; i++ {
		qg, ng, err := w.GlobalGraphs(wl)
		if err != nil {
			b.Fatal(err)
		}
		m := mapping.NewMapper(qg, ng, mapping.Options{})
		a, err := m.Map()
		if err != nil {
			b.Fatal(err)
		}
		withCost = w.WeightedCommCost(wl, sim.PlacementFromAssignment(qg, ng, a))

		qg2, ng2, err := w.GlobalGraphs(wl)
		if err != nil {
			b.Fatal(err)
		}
		qg2.DropOverlapEdges()
		m2 := mapping.NewMapper(qg2, ng2, mapping.Options{})
		a2, err := m2.Map()
		if err != nil {
			b.Fatal(err)
		}
		withoutCost = w.WeightedCommCost(wl, sim.PlacementFromAssignment(qg2, ng2, a2))
	}
	b.ReportMetric(withoutCost/withCost, "noOverlap/withOverlap")
}

// BenchmarkAblationAlpha sweeps the load-imbalance slack α of Eqn 3.1.
func BenchmarkAblationAlpha(b *testing.B) {
	w := benchWorld(b)
	wl, err := w.GenerateWorkload(400)
	if err != nil {
		b.Fatal(err)
	}
	for _, alpha := range []float64{0.02, 0.1, 0.5} {
		b.Run(formatAlpha(alpha), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				qg, ng, err := w.GlobalGraphs(wl)
				if err != nil {
					b.Fatal(err)
				}
				m := mapping.NewMapper(qg, ng, mapping.Options{Alpha: alpha})
				a, err := m.Map()
				if err != nil {
					b.Fatal(err)
				}
				cost = w.WeightedCommCost(wl, sim.PlacementFromAssignment(qg, ng, a))
			}
			b.ReportMetric(cost, "comm-cost")
		})
	}
}

// BenchmarkAblationAlg3Heuristics compares Algorithm 3's benefit-slack and
// flow-fraction heuristics against a degenerate configuration.
func BenchmarkAblationAlg3Heuristics(b *testing.B) {
	w := benchWorld(b)
	wl, err := w.GenerateWorkload(400)
	if err != nil {
		b.Fatal(err)
	}
	qg, ng, err := w.GlobalGraphs(wl)
	if err != nil {
		b.Fatal(err)
	}
	m := mapping.NewMapper(qg, ng, mapping.Options{})
	base, err := m.Greedy()
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opts adapt.Options
	}{
		{"paper-x10-f90", adapt.Options{BenefitSlackPct: 10, FlowFraction: 0.9}},
		{"greedy-x100", adapt.Options{BenefitSlackPct: 100, FlowFraction: 0.9}},
		{"loose-f50", adapt.Options{BenefitSlackPct: 10, FlowFraction: 0.5}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var res *adapt.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = adapt.Rebalance(qg, ng, base, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.WECAfter/res.WECBefore, "wecAfter/before")
			b.ReportMetric(float64(res.Migrations), "migrations")
		})
	}
}

// BenchmarkAblationResultSharing compares overlay traffic with and without
// §2.1 result-stream sharing on a small live deployment.
func BenchmarkAblationResultSharing(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		var err error
		with, err = liveTrafficCost(false)
		if err != nil {
			b.Fatal(err)
		}
		without, err = liveTrafficCost(true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(without/with, "noShare/share")
}

// BenchmarkWorkloadNewQuery times drawing queries from the zipf interest
// model at paper scale (20,000 substreams).
func BenchmarkWorkloadNewQuery(b *testing.B) {
	w := benchWorld(b)
	cfg := workload.DefaultConfig()
	cfg.Seed = 1
	wl, err := workload.Generate(cfg, w.Sources, w.Processors, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wl.NewQuery(w.Processors)
	}
}

// liveTrafficCost runs a small live deployment through the public API and
// returns the overlay's weighted communication cost.
func liveTrafficCost(disableSharing bool) (float64, error) {
	g, err := topology.Generate(topology.Config{
		TransitDomains:      1,
		TransitNodes:        2,
		StubDomainsPerNode:  2,
		StubNodes:           4,
		InterTransitLatency: [2]float64{50, 100},
		IntraTransitLatency: [2]float64{10, 20},
		TransitStubLatency:  [2]float64{2, 5},
		IntraStubLatency:    [2]float64{1, 2},
		Seed:                3,
	})
	if err != nil {
		return 0, err
	}
	nodes, err := topology.SampleNodes(g, topology.Stub, 8, 3, nil)
	if err != nil {
		return 0, err
	}
	procs, srcs := nodes[:3], nodes[6:]
	m, err := New(g, procs, Config{K: 2, VMax: 10, DisableResultSharing: disableSharing})
	if err != nil {
		return 0, err
	}
	tcfg := trace.Config{Stations: 10, Deployments: 2, PeriodMillis: 60_000, Seed: 5}
	gen, err := trace.New(tcfg)
	if err != nil {
		return 0, err
	}
	for d := 0; d < 2; d++ {
		err := m.RegisterStream(StreamDef{
			Name:             trace.StreamName(d),
			Schema:           trace.Schema(),
			Source:           srcs[d],
			Substreams:       5,
			RatePerSubstream: 1,
		})
		if err != nil {
			return 0, err
		}
	}
	for i := 0; i < 16; i++ {
		cql := fmt.Sprintf(`SELECT A.snowHeight, B.snowHeight, A.timestamp
			FROM %s [Range %d Minutes] A, %s [Now] B
			WHERE A.snowHeight > B.snowHeight AND A.snowHeight > %d`,
			trace.StreamName(0), 5+5*(i%3), trace.StreamName(1), 20+5*(i%4))
		if _, err := m.Submit(cql, procs[i%len(procs)], nil); err != nil {
			return 0, err
		}
	}
	if err := m.Start(); err != nil {
		return 0, err
	}
	for t := 0; t < 20; t++ {
		for _, r := range gen.Next() {
			if err := m.Publish(r); err != nil {
				return 0, err
			}
		}
	}
	return m.Traffic().WeightedCost, nil
}

func formatAlpha(a float64) string {
	switch a {
	case 0.02:
		return "alpha=0.02"
	case 0.1:
		return "alpha=0.10"
	default:
		return "alpha=0.50"
	}
}
