# Builds the deployable cosmos-node image (see OPS.md). Multi-stage: the
# Go toolchain stays in the builder; the runtime stage ships one static
# binary on a minimal base whose busybox wget doubles as the compose
# healthcheck probe. The module has no external dependencies (no go.sum),
# so copying the tree is the entire fetch step.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/cosmos-node ./cmd/cosmos-node

FROM alpine:3.20
COPY --from=build /out/cosmos-node /usr/local/bin/cosmos-node
# The node binds unprivileged ports only (overlay :7000, ops :8080 in the
# shipped configs), so it runs as nobody.
USER nobody
ENTRYPOINT ["cosmos-node"]
