package cosmos

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/topology"
)

// testTopology builds a small WAN and returns (graph, processors).
func testTopology(t *testing.T) (*topology.Graph, []NodeID) {
	t.Helper()
	cfg := topology.Config{
		TransitDomains:      1,
		TransitNodes:        2,
		StubDomainsPerNode:  2,
		StubNodes:           4,
		InterTransitLatency: [2]float64{50, 100},
		IntraTransitLatency: [2]float64{10, 20},
		TransitStubLatency:  [2]float64{2, 5},
		IntraStubLatency:    [2]float64{1, 2},
		Seed:                3,
	}
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	procs, err := topology.SampleNodes(g, topology.Stub, 6, 3, nil)
	if err != nil {
		t.Fatalf("SampleNodes: %v", err)
	}
	return g, procs
}

func stationSchema() stream.Schema {
	return stream.Schema{Attrs: []stream.Attribute{
		{Name: "snowHeight", Type: stream.Float},
	}}
}

// TestTable1EndToEnd runs the paper's §2.1 scenario: Q3 and Q4 over
// Station1/Station2 are merged into a superset query at their shared
// processor, and the shared result stream is split back per user by
// residual subscriptions.
func TestTable1EndToEnd(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:4], Config{K: 2, VMax: 10, Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src1, src2 := procs[4], procs[5]
	for _, def := range []StreamDef{
		{Name: "Station1", Schema: stationSchema(), Source: src1, Substreams: 4, RatePerSubstream: 10},
		{Name: "Station2", Schema: stationSchema(), Source: src2, Substreams: 4, RatePerSubstream: 10},
	} {
		if err := m.RegisterStream(def); err != nil {
			t.Fatalf("RegisterStream(%s): %v", def.Name, err)
		}
	}

	var q3Results, q4Results []Tuple
	q3, err := m.Submit(`SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10`,
		procs[0], func(t Tuple) { q3Results = append(q3Results, t) })
	if err != nil {
		t.Fatalf("Submit Q3: %v", err)
	}
	q4, err := m.Submit(`SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp
		FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight`,
		procs[1], func(t Tuple) { q4Results = append(q4Results, t) })
	if err != nil {
		t.Fatalf("Submit Q4: %v", err)
	}
	if err := m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}

	// Feed readings. Timestamps in ms; S1 readings land inside/outside
	// the 30-minute window; snow heights straddle the >= 10 filter.
	pub := func(streamName string, ts int64, snow float64) {
		err := m.Publish(Tuple{
			Stream:    streamName,
			Timestamp: ts,
			Attrs:     map[string]stream.Value{"snowHeight": stream.FloatVal(snow)},
			Size:      24,
		})
		if err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	const minute = 60_000
	pub("Station1", 0*minute, 15)  // old S1 reading: outside 30m at t=45m, inside 1h
	pub("Station1", 40*minute, 8)  // S1 below Q3's >= 10 filter
	pub("Station1", 42*minute, 20) // S1 inside both windows, passes filter
	pub("Station2", 45*minute, 12) // S2 arrival triggers joins

	// Q4 (1-hour window, no filter): S2=12 joins S1 tuples with
	// snowHeight > 12: {15 @0m, 20 @42m} -> 2 results.
	if got := len(q4Results); got != 2 {
		t.Fatalf("Q4 delivered %d results, want 2 (results: %v)", got, q4Results)
	}
	// Q3 (30-minute window, S1.snowHeight >= 10): only {20 @42m} -> 1.
	if got := len(q3Results); got != 1 {
		t.Fatalf("Q3 delivered %d results, want 1 (results: %v)", got, q3Results)
	}

	// Q3's projection is S2.*: its result must carry S2 attributes only.
	res := q3Results[0]
	if _, ok := res.Attrs["S2.snowHeight"]; !ok {
		t.Errorf("Q3 result missing S2.snowHeight: %v", res.Attrs)
	}
	if _, ok := res.Attrs["S1.snowHeight"]; ok {
		t.Errorf("Q3 result leaked S1.snowHeight: %v", res.Attrs)
	}

	if q3.Delivered() != 1 || q4.Delivered() != 2 {
		t.Errorf("handle counters: q3=%d q4=%d, want 1/2", q3.Delivered(), q4.Delivered())
	}

	// Sharing: when Q3 and Q4 are co-located, the processor runs ONE
	// superset query (Q5 of Table 1).
	place := m.Placement()
	if place[q3.Name] == place[q4.Name] {
		eng := m.engines[place[q3.Name]]
		if names := eng.QueryNames(); len(names) != 1 {
			t.Errorf("expected one merged query at shared processor, got %v", names)
		}
	}

	if tr := m.Traffic(); tr.DataBytes == 0 || tr.WeightedCost == 0 {
		t.Errorf("no traffic accounted: %+v", tr)
	}
}

// TestOnlineSubmitAfterStart inserts a query online and checks delivery.
func TestOnlineSubmitAfterStart(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:4], Config{K: 2, VMax: 10, Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src := procs[4]
	if err := m.RegisterStream(StreamDef{
		Name: "Station1", Schema: stationSchema(), Source: src, Substreams: 2, RatePerSubstream: 5,
	}); err != nil {
		t.Fatalf("RegisterStream: %v", err)
	}
	// A first query so Start has a distribution.
	if _, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 100`, procs[0], nil); err != nil {
		t.Fatalf("Submit warmup: %v", err)
	}
	if err := m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}

	var got []Tuple
	h, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 5`,
		procs[1], func(t Tuple) { got = append(got, t) })
	if err != nil {
		t.Fatalf("Submit online: %v", err)
	}
	if h.Processor() < 0 {
		t.Fatal("online query not placed")
	}
	err = m.Publish(Tuple{
		Stream:    "Station1",
		Timestamp: 1000,
		Attrs:     map[string]stream.Value{"snowHeight": stream.FloatVal(9)},
	})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("online query delivered %d results, want 1", len(got))
	}
}

// TestRegisterStreamAfterStart registers a stream on a running middleware:
// its source broker joins the live overlay, the advertisement floods, and a
// query submitted afterwards delivers end to end.
func TestRegisterStreamAfterStart(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:3], Config{K: 2, VMax: 10, Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.RegisterStream(StreamDef{
		Name: "Station1", Schema: stationSchema(), Source: procs[4], Substreams: 2, RatePerSubstream: 5,
	}); err != nil {
		t.Fatalf("RegisterStream: %v", err)
	}
	if _, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 100`, procs[0], nil); err != nil {
		t.Fatalf("Submit warmup: %v", err)
	}
	if err := m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}

	// procs[5] was not part of the overlay at Start: the broker joins
	// dynamically.
	if err := m.RegisterStream(StreamDef{
		Name: "Station2", Schema: stationSchema(), Source: procs[5], Substreams: 1, RatePerSubstream: 3,
	}); err != nil {
		t.Fatalf("RegisterStream after Start: %v", err)
	}
	var got []Tuple
	if _, err := m.Submit(`SELECT * FROM Station2 [Now] WHERE snowHeight > 5`,
		procs[1], func(t Tuple) { got = append(got, t) }); err != nil {
		t.Fatalf("Submit on late stream: %v", err)
	}
	for _, snow := range []float64{9, 2} { // second reading filtered out
		err := m.Publish(Tuple{
			Stream:    "Station2",
			Timestamp: 1000,
			Attrs:     map[string]stream.Value{"snowHeight": stream.FloatVal(snow)},
		})
		if err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	if len(got) != 1 {
		t.Fatalf("late-stream query delivered %d results, want 1", len(got))
	}
}

// TestCancelQuery: cancelling a handle stops deliveries, retracts the
// query's routing state across the overlay, leaves co-located queries
// intact, and is idempotent.
func TestCancelQuery(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:3], Config{K: 2, VMax: 10, Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.RegisterStream(StreamDef{
		Name: "Station1", Schema: stationSchema(), Source: procs[4], Substreams: 2, RatePerSubstream: 5,
	}); err != nil {
		t.Fatalf("RegisterStream: %v", err)
	}
	var gotA, gotB []Tuple
	ha, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 5`,
		procs[0], func(t Tuple) { gotA = append(gotA, t) })
	if err != nil {
		t.Fatalf("Submit A: %v", err)
	}
	hb, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 7`,
		procs[1], func(t Tuple) { gotB = append(gotB, t) })
	if err != nil {
		t.Fatalf("Submit B: %v", err)
	}
	if err := m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	pub := func(snow float64) {
		t.Helper()
		err := m.Publish(Tuple{
			Stream:    "Station1",
			Timestamp: 1000,
			Attrs:     map[string]stream.Value{"snowHeight": stream.FloatVal(snow)},
		})
		if err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	pub(9)
	if len(gotA) != 1 || len(gotB) != 1 {
		t.Fatalf("pre-cancel deliveries A=%d B=%d, want 1/1", len(gotA), len(gotB))
	}

	if err := ha.Cancel(); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if !ha.Cancelled() || hb.Cancelled() {
		t.Fatalf("cancelled flags: A=%v B=%v, want true/false", ha.Cancelled(), hb.Cancelled())
	}
	if err := ha.Cancel(); err != nil {
		t.Fatalf("second Cancel must be an idempotent no-op, got %v", err)
	}
	pub(9)
	if len(gotA) != 1 {
		t.Errorf("cancelled query still delivered: %d results", len(gotA))
	}
	if len(gotB) != 2 {
		t.Errorf("surviving query deliveries = %d, want 2", len(gotB))
	}
	if _, ok := m.Placement()[ha.Name]; ok {
		t.Error("cancelled query still placed")
	}

	// Cancelling the last query drains every broker's routing state:
	// no input subscriptions, no user-side result subscriptions, no
	// remote records anywhere.
	if err := hb.Cancel(); err != nil {
		t.Fatalf("Cancel B: %v", err)
	}
	for _, n := range m.net.Nodes() {
		b, _ := m.net.Broker(n)
		if remote, local := b.RoutingStateSize(); remote != 0 || local != 0 {
			t.Errorf("broker %d retains routing state after last cancel: remote=%d local=%d", n, remote, local)
		}
	}
	pub(9)
	if len(gotB) != 2 {
		t.Errorf("deliveries after full cancel = %d, want 2", len(gotB))
	}
}

// TestCancelColocatedMergedQuery: on a single processor the two queries
// share one superset query (§2.1). Cancelling one regroups the survivor
// under a NEW superset (different result tag and residual), so Cancel must
// rebuild the survivor's user-side subscription — a survivor left filtering
// on the old tag would starve.
func TestCancelColocatedMergedQuery(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:1], Config{K: 2, VMax: 10, Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.RegisterStream(StreamDef{
		Name: "Station1", Schema: stationSchema(), Source: procs[4], Substreams: 2, RatePerSubstream: 5,
	}); err != nil {
		t.Fatalf("RegisterStream: %v", err)
	}
	var gotA, gotB []Tuple
	ha, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 5`,
		procs[0], func(t Tuple) { gotA = append(gotA, t) })
	if err != nil {
		t.Fatalf("Submit A: %v", err)
	}
	_, err = m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 7`,
		procs[0], func(t Tuple) { gotB = append(gotB, t) })
	if err != nil {
		t.Fatalf("Submit B: %v", err)
	}
	if err := m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	pub := func(snow float64) {
		t.Helper()
		err := m.Publish(Tuple{
			Stream:    "Station1",
			Timestamp: 1000,
			Attrs:     map[string]stream.Value{"snowHeight": stream.FloatVal(snow)},
		})
		if err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	pub(9)
	if len(gotA) != 1 || len(gotB) != 1 {
		t.Fatalf("pre-cancel deliveries A=%d B=%d, want 1/1", len(gotA), len(gotB))
	}
	if err := ha.Cancel(); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	pub(9)
	if len(gotB) != 2 {
		t.Fatalf("surviving merged query deliveries = %d, want 2 (user-side subscription must be rebuilt)", len(gotB))
	}
	if len(gotA) != 1 {
		t.Errorf("cancelled query still delivered: %d results", len(gotA))
	}
}

// TestUnregisterStream: withdrawing a stream stops publishes, prunes the
// advert and subscription state it justified across the overlay, and a
// revival re-registration (same name, original schema) resumes deliveries
// end to end via advert-triggered re-propagation.
func TestUnregisterStream(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:3], Config{K: 2, VMax: 10, Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.RegisterStream(StreamDef{
		Name: "Station1", Schema: stationSchema(), Source: procs[4], Substreams: 2, RatePerSubstream: 5,
	}); err != nil {
		t.Fatalf("RegisterStream: %v", err)
	}
	var got []Tuple
	if _, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 5`,
		procs[0], func(t Tuple) { got = append(got, t) }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	pub := func(snow float64) error {
		return m.Publish(Tuple{
			Stream:    "Station1",
			Timestamp: 1000,
			Attrs:     map[string]stream.Value{"snowHeight": stream.FloatVal(snow)},
		})
	}
	if err := pub(9); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("pre-unregister deliveries = %d, want 1", len(got))
	}

	if err := m.UnregisterStream("Station1"); err != nil {
		t.Fatalf("UnregisterStream: %v", err)
	}
	if err := pub(9); err == nil {
		t.Fatal("Publish on unregistered stream succeeded")
	}
	if err := m.UnregisterStream("Station1"); err == nil {
		t.Fatal("second UnregisterStream succeeded")
	}
	if err := m.UnregisterStream("never-registered"); err == nil {
		t.Fatal("UnregisterStream of unknown stream succeeded")
	}
	// The source broker's advert and every record the input subscription
	// installed along the path toward it are gone; the processor's local
	// input subscription survives (it is torn down by query cancel).
	srcBroker, ok := m.net.Broker(procs[4])
	if !ok {
		t.Fatal("no source broker")
	}
	if own, _ := srcBroker.AdvertStateSize(); own != 0 {
		t.Fatalf("source still advertises %d streams after unregister", own)
	}
	if remote, _ := srcBroker.RoutingStateSize(); remote != 0 {
		t.Fatalf("source still records %d input subscriptions after unregister", remote)
	}

	// A revival that tries to change the frozen shape is rejected.
	if err := m.RegisterStream(StreamDef{Name: "Station1", Source: procs[4], Substreams: 5}); err == nil {
		t.Fatal("revival with a different substream count succeeded")
	}
	if err := m.RegisterStream(StreamDef{
		Name: "Station1", Source: procs[4],
		Schema: stream.Schema{Attrs: []stream.Attribute{{Name: "other", Type: stream.Float}}},
	}); err == nil {
		t.Fatal("revival with a different schema succeeded")
	}

	// Revival: same name, original schema and substream slots; deliveries
	// resume without resubmitting the query.
	if err := m.RegisterStream(StreamDef{Name: "Station1", Source: procs[4]}); err != nil {
		t.Fatalf("revival RegisterStream: %v", err)
	}
	if err := pub(9); err != nil {
		t.Fatalf("Publish after revival: %v", err)
	}
	if err := pub(2); err != nil { // filtered at source
		t.Fatalf("Publish after revival: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("post-revival deliveries = %d, want 2 (subscriptions must replay toward the revived source)", len(got))
	}
	// Re-registering a LIVE stream stays an error.
	if err := m.RegisterStream(StreamDef{Name: "Station1", Source: procs[4]}); err == nil {
		t.Fatal("re-registering a live stream succeeded")
	}
}

// TestCancelRemovesCoordinatorState: cancelling queries removes their
// vertices, assignment entries and load contributions from every level of
// the coordinator tree — cancelling everything drains it to exactly zero.
func TestCancelRemovesCoordinatorState(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:4], Config{K: 2, VMax: 10, Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.RegisterStream(StreamDef{
		Name: "Station1", Schema: stationSchema(), Source: procs[4], Substreams: 2, RatePerSubstream: 5,
	}); err != nil {
		t.Fatalf("RegisterStream: %v", err)
	}
	var handles []*QueryHandle
	for i := 0; i < 6; i++ {
		h, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 5`, procs[i%4], nil)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		handles = append(handles, h)
	}
	if err := m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// One online submission on top of the batch.
	h, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 8`, procs[1], nil)
	if err != nil {
		t.Fatalf("Submit online: %v", err)
	}
	handles = append(handles, h)

	if q, v, _ := m.tree.Residual(); q != len(handles) || v == 0 {
		t.Fatalf("pre-cancel residual: queries=%d vertices=%d, want %d queries", q, v, len(handles))
	}
	if err := handles[2].Cancel(); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if _, placed := m.tree.Placement()[handles[2].Name]; placed {
		t.Fatal("cancelled query still placed in the coordinator tree")
	}
	if q, _, _ := m.tree.Residual(); q != len(handles)-1 {
		t.Fatalf("residual queries after one cancel = %d, want %d", q, len(handles)-1)
	}

	for _, h := range handles {
		if err := h.Cancel(); err != nil {
			t.Fatalf("Cancel: %v", err)
		}
	}
	q, v, load := m.tree.Residual()
	if q != 0 || v != 0 || load != 0 {
		t.Fatalf("coordinator tree residual after cancelling everything: queries=%d vertices=%d load=%v, want 0/0/0",
			q, v, load)
	}
}

// TestRevivalRejectsAvgTupleBytesChange: the per-tuple accounting size is
// frozen with the substream slots; a revival supplying a different value is
// an error, not a silent reset.
func TestRevivalRejectsAvgTupleBytesChange(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:3], Config{K: 2, VMax: 10, Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.RegisterStream(StreamDef{
		Name: "Station1", Schema: stationSchema(), Source: procs[4], AvgTupleBytes: 64,
	}); err != nil {
		t.Fatalf("RegisterStream: %v", err)
	}
	if _, err := m.Submit(`SELECT * FROM Station1 [Now]`, procs[0], nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := m.UnregisterStream("Station1"); err != nil {
		t.Fatalf("UnregisterStream: %v", err)
	}
	if err := m.RegisterStream(StreamDef{Name: "Station1", Source: procs[4], AvgTupleBytes: 200}); err == nil {
		t.Fatal("revival with a different AvgTupleBytes succeeded")
	}
	if err := m.RegisterStream(StreamDef{Name: "Station1", Source: procs[4], AvgTupleBytes: 64}); err != nil {
		t.Fatalf("revival with the original AvgTupleBytes failed: %v", err)
	}
}
