// Federation: a wide-area federation of sensor deployments with a large
// query fleet, demonstrating what the COSMOS middleware buys.
//
// The same workload runs twice — once with result-stream sharing (§2.1)
// enabled and once without — and reports the overlay traffic of both, plus
// a runtime adaptation round. Everything goes through the public API.
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	cosmos "repro"
	"repro/internal/topology"
	"repro/internal/trace"
)

const (
	deployments = 6
	queries     = 60
	ticks       = 40
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	shared, err := experiment(false)
	if err != nil {
		return err
	}
	solo, err := experiment(true)
	if err != nil {
		return err
	}
	fmt.Println("== federation summary ==")
	fmt.Printf("with result sharing:    weighted cost %.0f (%.1f KB on the wire)\n",
		shared.WeightedCost, shared.DataBytes/1024)
	fmt.Printf("without result sharing: weighted cost %.0f (%.1f KB on the wire)\n",
		solo.WeightedCost, solo.DataBytes/1024)
	if shared.WeightedCost < solo.WeightedCost {
		fmt.Printf("sharing saved %.1f%% of weighted communication cost\n",
			100*(1-shared.WeightedCost/solo.WeightedCost))
	}
	return nil
}

type traffic struct {
	WeightedCost float64
	DataBytes    float64
}

func experiment(disableSharing bool) (traffic, error) {
	// An intercontinental overlay: 3 transit domains with high latencies.
	g, err := topology.Generate(topology.Config{
		TransitDomains:      3,
		TransitNodes:        2,
		StubDomainsPerNode:  2,
		StubNodes:           4,
		InterTransitLatency: [2]float64{80, 250},
		IntraTransitLatency: [2]float64{20, 40},
		TransitStubLatency:  [2]float64{3, 10},
		IntraStubLatency:    [2]float64{1, 3},
		Seed:                21,
	})
	if err != nil {
		return traffic{}, err
	}
	nodes, err := topology.SampleNodes(g, topology.Stub, 12+deployments, 6, nil)
	if err != nil {
		return traffic{}, err
	}
	processors, srcNodes := nodes[:12], nodes[12:]

	tcfg := trace.Config{Stations: 30, Deployments: deployments, PeriodMillis: 60_000, Seed: 4}
	gen, err := trace.New(tcfg)
	if err != nil {
		return traffic{}, err
	}
	// Workers parallelizes the optimizer's distribution and adaptation
	// passes across cores; tuple routing is concurrent regardless (the
	// brokers' lock-free snapshot path, CONCURRENCY.md). Placements and
	// deliveries are identical at any worker count — set
	// SequentialAdapt/DisableSnapshotRouting to force the single-threaded
	// reference modes when bisecting.
	m, err := cosmos.New(g, processors, cosmos.Config{
		K: 3, VMax: 30, Workers: 4, DisableResultSharing: disableSharing,
	})
	if err != nil {
		return traffic{}, err
	}
	for d := 0; d < deployments; d++ {
		err := m.RegisterStream(cosmos.StreamDef{
			Name:             trace.StreamName(d),
			Schema:           trace.Schema(),
			Source:           srcNodes[d],
			Substreams:       tcfg.Stations / deployments,
			RatePerSubstream: 1,
		})
		if err != nil {
			return traffic{}, err
		}
	}

	// A fleet of randomized monitoring queries: clusters of users watch
	// the same deployment pairs with varying thresholds, which is what
	// result-stream sharing exploits.
	rng := rand.New(rand.NewPCG(9, 99))
	for i := 0; i < queries; i++ {
		d1 := rng.IntN(deployments)
		d2 := (d1 + 1) % deployments
		threshold := 30 + 5*rng.IntN(4)
		spanMin := 5 * (1 + rng.IntN(3))
		cql := fmt.Sprintf(`SELECT A.snowHeight, B.snowHeight, A.timestamp
			FROM %s [Range %d Minutes] A, %s [Now] B
			WHERE A.snowHeight > B.snowHeight AND A.snowHeight > %d`,
			trace.StreamName(d1), spanMin, trace.StreamName(d2), threshold)
		proxy := processors[rng.IntN(len(processors))]
		if _, err := m.Submit(cql, proxy, nil); err != nil {
			return traffic{}, err
		}
	}
	if err := m.Start(); err != nil {
		return traffic{}, err
	}

	feed := func(n int) error {
		for i := 0; i < n; i++ {
			for _, r := range gen.Next() {
				if err := m.Publish(r); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := feed(ticks / 2); err != nil {
		return traffic{}, err
	}
	if migrated, err := m.Adapt(); err != nil {
		return traffic{}, err
	} else if !disableSharing {
		fmt.Printf("adaptation round migrated %d queries\n", migrated)
	}
	if err := feed(ticks / 2); err != nil {
		return traffic{}, err
	}
	tr := m.Traffic()
	return traffic{WeightedCost: tr.WeightedCost, DataBytes: tr.DataBytes}, nil
}
