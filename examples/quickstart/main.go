// Quickstart: the §2.1 scenario of the paper end to end.
//
// Two users submit the snow-drift queries Q3 and Q4 (Table 1) from
// different proxies. COSMOS places them, merges them into the superset
// query Q5 when co-located, wires the content-based Pub/Sub, and splits the
// shared result stream back per user with residual subscriptions.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cosmos "repro"
	"repro/internal/stream"
	"repro/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small wide-area topology: 1 transit domain, a few stub LANs.
	g, err := topology.Generate(topology.Config{
		TransitDomains:      1,
		TransitNodes:        2,
		StubDomainsPerNode:  2,
		StubNodes:           4,
		InterTransitLatency: [2]float64{50, 100},
		IntraTransitLatency: [2]float64{10, 20},
		TransitStubLatency:  [2]float64{2, 5},
		IntraStubLatency:    [2]float64{1, 2},
		Seed:                3,
	})
	if err != nil {
		return err
	}
	nodes, err := topology.SampleNodes(g, topology.Stub, 6, 3, nil)
	if err != nil {
		return err
	}
	processors, sources := nodes[:4], nodes[4:]

	m, err := cosmos.New(g, processors, cosmos.Config{K: 2, VMax: 10})
	if err != nil {
		return err
	}
	schema := stream.Schema{Attrs: []stream.Attribute{{Name: "snowHeight", Type: stream.Float}}}
	for i, name := range []string{"Station1", "Station2"} {
		err := m.RegisterStream(cosmos.StreamDef{
			Name:             name,
			Schema:           schema,
			Source:           sources[i%len(sources)],
			Substreams:       4,
			RatePerSubstream: 10,
		})
		if err != nil {
			return err
		}
	}

	// The paper's Q3 and Q4 (Table 1).
	q3, err := m.Submit(`SELECT S2.*
		FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10`,
		processors[0],
		func(t cosmos.Tuple) { fmt.Printf("  user@n3 (Q3) got: %v\n", t.Attrs) })
	if err != nil {
		return err
	}
	q4, err := m.Submit(`SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp
		FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
		WHERE S1.snowHeight > S2.snowHeight`,
		processors[1],
		func(t cosmos.Tuple) { fmt.Printf("  user@n4 (Q4) got: %v\n", t.Attrs) })
	if err != nil {
		return err
	}

	if err := m.Start(); err != nil {
		return err
	}
	fmt.Printf("Q3 runs on processor %d, Q4 on processor %d\n", q3.Processor(), q4.Processor())

	// Publish a morning of readings.
	const minute = int64(60_000)
	readings := []struct {
		stream string
		ts     int64
		snow   float64
	}{
		{"Station1", 0 * minute, 15},
		{"Station1", 40 * minute, 8},
		{"Station1", 42 * minute, 20},
		{"Station2", 45 * minute, 12},
	}
	fmt.Println("publishing readings...")
	for _, r := range readings {
		err := m.Publish(cosmos.Tuple{
			Stream:    r.stream,
			Timestamp: r.ts,
			Attrs:     map[string]stream.Value{"snowHeight": stream.FloatVal(r.snow)},
		})
		if err != nil {
			return err
		}
	}

	fmt.Printf("\ndelivered: Q3=%d results, Q4=%d results\n", q3.Delivered(), q4.Delivered())
	tr := m.Traffic()
	fmt.Printf("overlay traffic: %.0f data bytes over %d links (weighted cost %.1f)\n",
		tr.DataBytes, tr.Links, tr.WeightedCost)
	es := m.EngineStats()
	fmt.Printf("engines: consumed=%d emitted=%d early-dropped=%d\n",
		es.Consumed, es.Emitted, es.Dropped)
	return nil
}
