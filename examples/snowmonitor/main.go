// Snowmonitor: continuous monitoring of SensorScope-style deployments.
//
// Five sensor deployments publish synthetic snow/weather readings; a fleet
// of monitoring queries (threshold alerts, cross-deployment comparisons)
// runs on a handful of processors. The example shows early filtering and
// projection in the Pub/Sub, result-stream sharing, and a runtime
// adaptation round after the workload has been running.
//
// Run with: go run ./examples/snowmonitor
package main

import (
	"fmt"
	"log"

	cosmos "repro"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := topology.Generate(topology.Config{
		TransitDomains:      2,
		TransitNodes:        2,
		StubDomainsPerNode:  2,
		StubNodes:           5,
		InterTransitLatency: [2]float64{60, 150},
		IntraTransitLatency: [2]float64{15, 30},
		TransitStubLatency:  [2]float64{3, 8},
		IntraStubLatency:    [2]float64{1, 2},
		Seed:                11,
	})
	if err != nil {
		return err
	}
	nodes, err := topology.SampleNodes(g, topology.Stub, 13, 4, nil)
	if err != nil {
		return err
	}
	processors, srcNodes := nodes[:8], nodes[8:]

	tcfg := trace.Config{Stations: 25, Deployments: 5, PeriodMillis: 60_000, Seed: 2}
	gen, err := trace.New(tcfg)
	if err != nil {
		return err
	}

	m, err := cosmos.New(g, processors, cosmos.Config{K: 2, VMax: 20})
	if err != nil {
		return err
	}
	for d := 0; d < tcfg.Deployments; d++ {
		err := m.RegisterStream(cosmos.StreamDef{
			Name:             trace.StreamName(d),
			Schema:           trace.Schema(),
			Source:           srcNodes[d%len(srcNodes)],
			Substreams:       tcfg.Stations / tcfg.Deployments,
			RatePerSubstream: 1,
		})
		if err != nil {
			return err
		}
	}

	// Monitoring fleet: per-deployment alerts plus cross-deployment
	// drift comparisons.
	counts := make(map[string]*int)
	submit := func(label, cql string, proxy cosmos.NodeID) error {
		n := new(int)
		counts[label] = n
		_, err := m.Submit(cql, proxy, func(cosmos.Tuple) { *n++ })
		return err
	}
	for d := 0; d < tcfg.Deployments; d++ {
		label := fmt.Sprintf("alert-d%d", d)
		cql := fmt.Sprintf(
			`SELECT * FROM %s [Now] WHERE snowHeight > 60`, trace.StreamName(d))
		if err := submit(label, cql, processors[d%len(processors)]); err != nil {
			return err
		}
	}
	for d := 0; d < tcfg.Deployments-1; d++ {
		label := fmt.Sprintf("drift-d%d-d%d", d, d+1)
		cql := fmt.Sprintf(`SELECT A.snowHeight, B.snowHeight, A.timestamp
			FROM %s [Range 10 Minutes] A, %s [Now] B
			WHERE A.snowHeight > B.snowHeight AND A.snowHeight > 40`,
			trace.StreamName(d), trace.StreamName(d+1))
		if err := submit(label, cql, processors[(d+3)%len(processors)]); err != nil {
			return err
		}
	}
	if err := m.Start(); err != nil {
		return err
	}
	fmt.Printf("placement: %v\n", m.Placement())

	feed := func(ticks int) error {
		for i := 0; i < ticks; i++ {
			for _, r := range gen.Next() {
				if err := m.Publish(r); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := feed(30); err != nil { // 30 minutes of readings
		return err
	}
	report(m, counts)

	fmt.Println("\nrunning one adaptation round...")
	migrated, err := m.Adapt()
	if err != nil {
		return err
	}
	fmt.Printf("adaptation migrated %d queries\n", migrated)
	if err := feed(30); err != nil {
		return err
	}
	report(m, counts)
	return nil
}

func report(m *cosmos.Middleware, counts map[string]*int) {
	total := 0
	for _, n := range counts {
		total += *n
	}
	tr := m.Traffic()
	es := m.EngineStats()
	fmt.Printf("results so far: %d | engines consumed=%d emitted=%d early-dropped=%d | overlay %.1f KB, weighted cost %.0f\n",
		total, es.Consumed, es.Emitted, es.Dropped, tr.DataBytes/1024, tr.WeightedCost)
}
