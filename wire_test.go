package cosmos

import (
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
)

func mustSubmitHandles(t *testing.T, texts []string) []*QueryHandle {
	t.Helper()
	out := make([]*QueryHandle, len(texts))
	for i, text := range texts {
		q, err := query.Parse(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		q.Name = string(rune('A' + i))
		out[i] = &QueryHandle{Name: q.Name, Query: q}
	}
	return out
}

func TestUnionFilters(t *testing.T) {
	hs := mustSubmitHandles(t, []string{
		`SELECT * FROM R [Now] WHERE a > 10 AND b < 5`,
		`SELECT * FROM R [Now] WHERE a > 20`,
	})
	filters := unionFilters(hs, "R")
	// Only `a` is constrained by both; the union keeps the weaker a > 10.
	if len(filters) != 1 {
		t.Fatalf("filters = %v, want exactly one", filters)
	}
	p := filters[0].Normalize()
	if p.Left.Col.Attr != "a" || p.Op != query.Gt || p.Right.Lit.F != 10 {
		t.Errorf("union filter = %v, want a > 10", p)
	}
	// A query with no selections on the stream kills all pushdown.
	hs = append(hs, mustSubmitHandles(t, []string{`SELECT * FROM R [Now]`})...)
	if got := unionFilters(hs, "R"); len(got) != 0 {
		t.Errorf("filters with unfiltered reader = %v, want none", got)
	}
	// A stream nobody reads yields no filters.
	if got := unionFilters(hs, "Z"); got != nil {
		t.Errorf("filters for unread stream = %v", got)
	}
}

func TestUnionFiltersNeverDropNeededTuples(t *testing.T) {
	hs := mustSubmitHandles(t, []string{
		`SELECT * FROM R [Now] WHERE a >= 10 AND a <= 20`,
		`SELECT * FROM R [Now] WHERE a >= 15 AND a <= 30`,
	})
	filters := unionFilters(hs, "R")
	// Every tuple either query accepts must pass the pushed-down filter.
	for a := 0.0; a <= 40; a++ {
		tp := stream.Tuple{Attrs: map[string]stream.Value{"a": stream.FloatVal(a)}}
		wanted := (a >= 10 && a <= 20) || (a >= 15 && a <= 30)
		passes := true
		for _, f := range filters {
			if !query.EvalSelection(f, tp) {
				passes = false
			}
		}
		if wanted && !passes {
			t.Errorf("a=%v needed by a query but dropped by union filter %v", a, filters)
		}
	}
}

func TestNeededAttrs(t *testing.T) {
	hs := mustSubmitHandles(t, []string{
		`SELECT R.a FROM R [Now] R, S [Now] S WHERE R.b = S.b`,
	})
	attrs := neededAttrs(hs, "R")
	if len(attrs) != 2 || attrs[0] != "a" || attrs[1] != "b" {
		t.Errorf("attrs = %v, want [a b]", attrs)
	}
	// A star over the stream demands everything.
	hs = mustSubmitHandles(t, []string{`SELECT R.* FROM R [Now] R, S [Now] S WHERE R.b = S.b`})
	if got := neededAttrs(hs, "R"); got != nil {
		t.Errorf("star projection attrs = %v, want nil (all)", got)
	}
	// The star over S must not affect R's list.
	hs = mustSubmitHandles(t, []string{`SELECT S.*, R.a FROM R [Now] R, S [Now] S WHERE R.b = S.b`})
	if got := neededAttrs(hs, "R"); len(got) != 2 {
		t.Errorf("attrs with foreign star = %v, want [a b]", got)
	}
}

func TestQualifyFilter(t *testing.T) {
	lit := stream.FloatVal(10)
	p := query.Predicate{
		Left:  query.Operand{Col: &query.ColRef{Alias: "S1", Attr: "snowHeight"}},
		Op:    query.Ge,
		Right: query.Operand{Lit: &lit},
	}
	q := qualifyFilter(p)
	if q.Left.Col.Attr != "S1.snowHeight" || q.Left.Col.Alias != "" {
		t.Errorf("qualified = %v", q)
	}
	// Must evaluate against flat result tuples.
	tp := stream.Tuple{Attrs: map[string]stream.Value{"S1.snowHeight": stream.FloatVal(12)}}
	if !query.EvalSelection(q.Normalize(), tp) {
		t.Error("qualified filter failed on matching result tuple")
	}
}

func TestAdaptRewiresMigratedQueries(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:4], Config{K: 2, VMax: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	src := procs[4]
	if err := m.RegisterStream(StreamDef{
		Name: "Station1", Schema: stationSchema(), Source: src, Substreams: 4, RatePerSubstream: 5,
	}); err != nil {
		t.Fatal(err)
	}
	var got int
	for i := 0; i < 6; i++ {
		_, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 1`,
			procs[i%4], func(Tuple) { got++ })
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Adapt(); err != nil {
		t.Fatalf("Adapt: %v", err)
	}
	// Delivery still works after rewiring.
	err = m.Publish(Tuple{
		Stream:    "Station1",
		Timestamp: 1,
		Attrs:     map[string]stream.Value{"snowHeight": stream.FloatVal(9)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("deliveries after Adapt = %d, want 6", got)
	}
}

func TestDisableResultSharingRunsQueriesSeparately(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:2], Config{K: 2, VMax: 10, Seed: 5, DisableResultSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	src := procs[4]
	if err := m.RegisterStream(StreamDef{
		Name: "Station1", Schema: stationSchema(), Source: src, Substreams: 2, RatePerSubstream: 5,
	}); err != nil {
		t.Fatal(err)
	}
	var a, b int
	if _, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 5`, procs[0],
		func(Tuple) { a++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(`SELECT * FROM Station1 [Now] WHERE snowHeight > 10`, procs[0],
		func(Tuple) { b++ }); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// Total engine queries across processors equals submissions (no merge).
	total := 0
	for _, e := range m.engines {
		total += len(e.QueryNames())
	}
	if total != 2 {
		t.Errorf("engine queries = %d, want 2 (sharing disabled)", total)
	}
	err = m.Publish(Tuple{
		Stream:    "Station1",
		Timestamp: 1,
		Attrs:     map[string]stream.Value{"snowHeight": stream.FloatVal(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 0 {
		t.Errorf("deliveries = %d/%d, want 1/0", a, b)
	}
}

func TestSubmitValidation(t *testing.T) {
	g, procs := testTopology(t)
	m, err := New(g, procs[:2], Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterStream(StreamDef{
		Name: "R", Schema: stationSchema(), Source: procs[4], Substreams: 1, RatePerSubstream: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(`SELECT * FROM Nowhere [Now]`, procs[0], nil); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := m.Submit(`SELECT * FROM R [Now] WHERE phantom > 1`, procs[0], nil); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := m.Submit(`SELECT * FROM R [Now]`, 99999, nil); err == nil {
		t.Error("non-processor proxy accepted")
	}
	if err := m.RegisterStream(StreamDef{Name: "R", Schema: stationSchema(), Source: procs[4]}); err == nil {
		t.Error("duplicate stream registration accepted")
	}
	if _, err := m.Adapt(); err == nil {
		t.Error("Adapt before Start accepted")
	}
	if err := m.Publish(Tuple{Stream: "R"}); err == nil {
		t.Error("Publish before Start accepted")
	}
}
