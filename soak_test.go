package cosmos

import (
	"fmt"
	"math/rand/v2"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/stream"
)

// Churn soak: a randomized register/subscribe(submit)/publish/cancel/
// unregister fuzz over a live middleware, asserting the two teardown
// invariants end to end:
//
//   - drain-to-empty: after cancelling every query and unregistering every
//     stream, every broker holds zero routing and advert state and the
//     coordinator tree holds zero residual queries, vertices and load;
//   - rebuild equivalence: right before teardown, the churned middleware
//     delivers exactly what a from-scratch middleware (surviving streams
//     registered, surviving queries submitted, non-survivors withdrawn)
//     delivers for an identical probe workload.
//
// The quick form runs in PR CI as a normal test; the long form (more
// seeds, higher op count) is enabled with COSMOS_SOAK_LONG=1 and runs —
// under -race — in the nightly workflow. Every run logs its seed;
// reproduce a failure with COSMOS_SOAK_SEED=<seed>.

const soakStreams = 6

type soakQuery struct {
	idx    int // index into the delivery logs
	cql    string
	proxy  NodeID
	handle *QueryHandle
}

type soakHarness struct {
	m    *Middleware
	logs []*[]string // per submitted query, in submit order
}

func soakSchema() stream.Schema {
	return stream.Schema{Attrs: []stream.Attribute{{Name: "v", Type: stream.Float}}}
}

func soakStreamName(i int) string { return fmt.Sprintf("Soak%d", i) }

func renderSoakTuple(t Tuple) string {
	keys := make([]string, 0, len(t.Attrs))
	for k := range t.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// The stream name of a result tuple is "results@<processor>" — a
	// placement artifact, not content — so it is deliberately omitted:
	// the churned and rebuilt middleware may place a query differently
	// while delivering identical results.
	var b strings.Builder
	fmt.Fprintf(&b, "@%d sz=%d", t.Timestamp, t.Size)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, t.Attrs[k])
	}
	return b.String()
}

func (h *soakHarness) submit(t *testing.T, q *soakQuery) {
	t.Helper()
	log := h.logs[q.idx]
	handle, err := h.m.Submit(q.cql, q.proxy, func(tp Tuple) {
		*log = append(*log, renderSoakTuple(tp))
	})
	if err != nil {
		t.Fatalf("Submit %q: %v", q.cql, err)
	}
	q.handle = handle
}

// soakFaults is the fault-schedule state of a fault-injected soak run: the
// chaos fabric plus the open loss windows. A crash or partition window
// silently blackholes traffic for a few ops and then closes through the
// repair path (CrashBroker / FailLink + re-attach) with the injector
// paused, so every loss is followed by the teardown+resync that makes it
// recoverable. Dup/delay faults need no windows — the epoch machinery
// absorbs them in place.
type soakFaults struct {
	fab      *chaos.Fabric
	crashWin map[NodeID]int    // source broker -> ops until crash repair
	flapWin  map[[2]NodeID]int // overlay link -> ops until flap repair
	downSrc  map[NodeID]bool   // crashed (repaired, not yet rejoined)
}

func hasLink(links [][2]NodeID, l [2]NodeID) bool {
	for _, x := range links {
		if x == l {
			return true
		}
	}
	return false
}

// tick advances every open loss window by one op and runs the repairs that
// came due, in deterministic order.
func (fs *soakFaults) tick(t *testing.T, m *Middleware) {
	t.Helper()
	for _, s := range sortedNodeKeys(fs.crashWin) {
		fs.crashWin[s]--
		if fs.crashWin[s] > 0 {
			continue
		}
		delete(fs.crashWin, s)
		fs.fab.Pause()
		if err := m.CrashBroker(s); err != nil {
			t.Fatalf("CrashBroker(%d): %v", s, err)
		}
		fs.fab.Resume()
		fs.downSrc[s] = true
	}
	for _, l := range sortedLinkKeys(fs.flapWin) {
		fs.flapWin[l]--
		if fs.flapWin[l] > 0 {
			continue
		}
		delete(fs.flapWin, l)
		fs.fab.Pause()
		// The link may have vanished through another repair's re-attach;
		// the partition then blackholed nothing further and there is no
		// state to tear down.
		if hasLink(m.net.Links(), l) {
			m.net.FailLink(l[0], l[1])
		}
		fs.fab.HealLink(l[0], l[1])
		fs.fab.Resume()
	}
}

// rejoin brings one crashed source broker back through the resync path.
func (fs *soakFaults) rejoin(t *testing.T, m *Middleware, src NodeID) {
	t.Helper()
	fs.fab.Pause()
	fs.fab.Heal(src)
	if err := m.RejoinBroker(src); err != nil {
		t.Fatalf("RejoinBroker(%d): %v", src, err)
	}
	fs.fab.Resume()
	delete(fs.downSrc, src)
}

// settle closes every open window and rejoins every crashed broker, then
// leaves the injector paused — the overlay must now be equivalent to one
// that never saw a fault.
func (fs *soakFaults) settle(t *testing.T, m *Middleware) {
	t.Helper()
	for len(fs.crashWin)+len(fs.flapWin) > 0 {
		fs.tick(t, m)
	}
	for _, s := range sortedNodeKeys(fs.downSrc) {
		fs.rejoin(t, m, s)
	}
	fs.fab.Pause()
}

func sortedNodeKeys[V any](m map[NodeID]V) []NodeID {
	out := make([]NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedLinkKeys[V any](m map[[2]NodeID]V) [][2]NodeID {
	out := make([][2]NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// runSoak drives one seeded soak run and returns nothing — it fails the
// test on any invariant violation. With faults set, a chaos fabric
// duplicates and reorders control traffic throughout, and crash/partition
// windows interleave with the churn (see soakFaults).
func runSoak(t *testing.T, seed uint64, nOps int, faults bool) {
	t.Logf("churn soak: seed=%d ops=%d faults=%v (reproduce with COSMOS_SOAK_SEED=%d)", seed, nOps, faults, seed)
	r := rand.New(rand.NewPCG(seed, 0x50a7))
	g, procs := testTopology(t)
	processors := procs[:4]
	sources := []NodeID{procs[4], procs[5]}
	newMW := func() *Middleware {
		m, err := New(g, processors, Config{K: 2, VMax: 10, Seed: 5})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return m
	}

	churn := &soakHarness{m: newMW()}
	// Two streams pre-registered so Start has an overlay to build; the
	// rest register (and unregister, and revive) online.
	live := make(map[int]bool)
	everRegistered := []int{0, 1}
	registered := map[int]bool{0: true, 1: true}
	defOf := func(i int) StreamDef {
		return StreamDef{
			Name:             soakStreamName(i),
			Schema:           soakSchema(),
			Source:           sources[i%len(sources)],
			Substreams:       1 + i%2,
			RatePerSubstream: 5,
		}
	}
	for _, i := range everRegistered {
		if err := churn.m.RegisterStream(defOf(i)); err != nil {
			t.Fatalf("RegisterStream: %v", err)
		}
	}
	if err := churn.m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}

	var fs *soakFaults
	opKinds := 20
	if faults {
		fs = &soakFaults{
			fab:      chaos.New(chaos.Config{Seed: seed ^ 0xfa17, Dup: 0.08, Delay: 0.10, MaxHold: 3}),
			crashWin: make(map[NodeID]int),
			flapWin:  make(map[[2]NodeID]int),
			downSrc:  make(map[NodeID]bool),
		}
		churn.m.net.SetPeerWrapper(fs.fab)
		opKinds = 26
	}

	var queries []*soakQuery // all ever submitted, in submit order
	ts := int64(0)
	for op := 0; op < nOps; op++ {
		if faults {
			fs.tick(t, churn.m)
		}
		regList := make([]int, 0, soakStreams)
		for i := range registered {
			regList = append(regList, i)
		}
		sort.Ints(regList)
		liveQs := make([]int, 0, len(queries))
		for qi, q := range queries {
			if live[qi] && q.handle != nil {
				liveQs = append(liveQs, qi)
			}
		}
		switch k := r.IntN(opKinds); {
		case k < 2: // register (fresh or revival)
			var cands []int
			for i := 0; i < soakStreams; i++ {
				if registered[i] {
					continue
				}
				if faults && fs.downSrc[defOf(i).Source] {
					continue // source broker crashed; registration refused
				}
				cands = append(cands, i)
			}
			if len(cands) == 0 {
				continue
			}
			i := cands[r.IntN(len(cands))]
			if err := churn.m.RegisterStream(defOf(i)); err != nil {
				t.Fatalf("seed %d op %d: RegisterStream(%d): %v", seed, op, i, err)
			}
			registered[i] = true
			seen := false
			for _, e := range everRegistered {
				if e == i {
					seen = true
				}
			}
			if !seen {
				everRegistered = append(everRegistered, i)
			}
		case k < 4: // unregister
			if len(regList) <= 1 {
				continue // keep at least one stream live
			}
			i := regList[r.IntN(len(regList))]
			if err := churn.m.UnregisterStream(soakStreamName(i)); err != nil {
				t.Fatalf("seed %d op %d: UnregisterStream(%d): %v", seed, op, i, err)
			}
			delete(registered, i)
		case k < 8: // submit
			if len(queries) >= 24 {
				continue
			}
			strm := everRegistered[r.IntN(len(everRegistered))]
			thr := float64(r.IntN(80))
			q := &soakQuery{
				idx: len(queries),
				cql: fmt.Sprintf(`SELECT * FROM %s [Now] WHERE v > %g`,
					soakStreamName(strm), thr),
				proxy: processors[r.IntN(len(processors))],
			}
			var log []string
			churn.logs = append(churn.logs, &log)
			churn.submit(t, q)
			live[q.idx] = true
			queries = append(queries, q)
		case k < 11: // cancel
			if len(liveQs) == 0 {
				continue
			}
			qi := liveQs[r.IntN(len(liveQs))]
			if err := queries[qi].handle.Cancel(); err != nil {
				t.Fatalf("seed %d op %d: Cancel(%s): %v", seed, op, queries[qi].handle.Name, err)
			}
			delete(live, qi)
		case k < 12: // adapt
			if len(liveQs) == 0 {
				continue
			}
			if _, err := churn.m.Adapt(); err != nil {
				t.Fatalf("seed %d op %d: Adapt: %v", seed, op, err)
			}
		case k < 20: // publish
			var cands []int
			for _, i := range regList {
				if faults && fs.downSrc[defOf(i).Source] {
					continue // stream unreachable while its source is down
				}
				cands = append(cands, i)
			}
			if len(cands) == 0 {
				continue
			}
			i := cands[r.IntN(len(cands))]
			ts++
			tup := Tuple{
				Stream:    soakStreamName(i),
				Timestamp: ts,
				Attrs:     map[string]stream.Value{"v": stream.FloatVal(float64(r.IntN(100)))},
			}
			if err := churn.m.Publish(tup); err != nil {
				t.Fatalf("seed %d op %d: Publish: %v", seed, op, err)
			}
		case k < 22: // open a crash window on a live source broker
			var cands []NodeID
			for _, s := range sources {
				if !fs.downSrc[s] && fs.crashWin[s] == 0 {
					cands = append(cands, s)
				}
			}
			if len(cands) == 0 {
				continue
			}
			src := cands[r.IntN(len(cands))]
			fs.fab.Crash(src)
			fs.crashWin[src] = 1 + r.IntN(6)
		case k < 24: // rejoin a crashed source broker
			cands := sortedNodeKeys(fs.downSrc)
			if len(cands) == 0 {
				continue
			}
			fs.rejoin(t, churn.m, cands[r.IntN(len(cands))])
		default: // open a partition window on an overlay link
			links := churn.m.net.Links()
			if len(links) == 0 {
				continue
			}
			l := links[r.IntN(len(links))]
			if fs.flapWin[l] > 0 {
				continue
			}
			fs.fab.PartitionLink(l[0], l[1])
			fs.flapWin[l] = 1 + r.IntN(6)
		}
	}

	if faults {
		// Close every loss window through its repair, rejoin everything,
		// and park the injector: from here the churned overlay must be
		// indistinguishable from a never-faulted one.
		fs.settle(t, churn.m)
		st := fs.fab.Stats()
		t.Logf("chaos: delivered=%d dup=%d delayed=%d released=%d blackholed=%d",
			st.Delivered, st.Duplicated, st.Delayed, st.Released, st.Blackholed)
	}

	// Reference rebuild: register every stream the churned registry knows
	// (original order), submit the surviving queries (original order),
	// start, then withdraw the streams that did not survive — landing in
	// the same logical end state with none of the churn history.
	ref := &soakHarness{m: newMW()}
	for _, i := range everRegistered {
		if err := ref.m.RegisterStream(defOf(i)); err != nil {
			t.Fatalf("reference RegisterStream: %v", err)
		}
	}
	refQueries := make(map[int]*soakQuery)
	for qi, q := range queries {
		var log []string
		for len(ref.logs) <= q.idx {
			ref.logs = append(ref.logs, nil)
		}
		ref.logs[q.idx] = &log
		if live[qi] {
			rq := &soakQuery{idx: q.idx, cql: q.cql, proxy: q.proxy}
			refQueries[qi] = rq
			ref.submit(t, rq)
		}
	}
	if err := ref.m.Start(); err != nil {
		t.Fatalf("reference Start: %v", err)
	}
	for _, i := range everRegistered {
		if !registered[i] {
			if err := ref.m.UnregisterStream(soakStreamName(i)); err != nil {
				t.Fatalf("reference UnregisterStream: %v", err)
			}
		}
	}

	// Identical probe workload on both; per-query deliveries must match
	// exactly (the churned middleware's surviving state is operationally
	// indistinguishable from the rebuilt one).
	marks := make([]int, len(churn.logs))
	for i, log := range churn.logs {
		marks[i] = len(*log)
	}
	regList := make([]int, 0, len(registered))
	for i := range registered {
		regList = append(regList, i)
	}
	sort.Ints(regList)
	for p := 0; p < 60; p++ {
		i := regList[r.IntN(len(regList))]
		ts++
		mk := func() Tuple {
			return Tuple{
				Stream:    soakStreamName(i),
				Timestamp: ts,
				Attrs:     map[string]stream.Value{"v": stream.FloatVal(float64((p * 13) % 100))},
			}
		}
		if err := churn.m.Publish(mk()); err != nil {
			t.Fatalf("probe Publish (churned): %v", err)
		}
		if err := ref.m.Publish(mk()); err != nil {
			t.Fatalf("probe Publish (reference): %v", err)
		}
	}
	for qi, q := range queries {
		if !live[qi] {
			continue
		}
		got := (*churn.logs[q.idx])[marks[q.idx]:]
		want := *ref.logs[q.idx]
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: probe deliveries of query %d diverge from rebuilt middleware\nchurned:   %v\nreference: %v",
				seed, q.idx, got, want)
		}
	}

	// Full teardown, then drain-to-empty on brokers AND coordinator tree.
	for qi, q := range queries {
		if live[qi] {
			if err := q.handle.Cancel(); err != nil {
				t.Fatalf("teardown Cancel: %v", err)
			}
		}
	}
	for _, i := range regList {
		if err := churn.m.UnregisterStream(soakStreamName(i)); err != nil {
			t.Fatalf("teardown UnregisterStream: %v", err)
		}
	}
	// Processors still advertise their (now unsubscribed) result streams;
	// withdraw those too so the advert tables can drain.
	for _, p := range processors {
		churn.m.net.RemoveStream(p, resultStreamName(p))
	}
	if faults {
		// Reorder tombstones kept against late duplicates are the one
		// piece of state dup/delay faults legitimately leave behind; with
		// the injector parked no message is in flight, so they are
		// garbage now and Quiesce sweeps them before the drain check.
		churn.m.net.Quiesce()
	}
	if residual := churn.m.net.ResidualState(); len(residual) != 0 {
		t.Fatalf("seed %d: broker state not drained after teardown:\n  %s",
			seed, strings.Join(residual, "\n  "))
	}
	q, v, load := churn.m.tree.Residual()
	if q != 0 || v != 0 || load != 0 {
		t.Fatalf("seed %d: coordinator tree residual after teardown: queries=%d vertices=%d load=%v, want 0/0/0",
			seed, q, v, load)
	}
}

// TestChurnSoak is the randomized register/submit/publish/cancel/unregister
// soak. Quick form by default (PR CI); COSMOS_SOAK_LONG=1 raises seeds and
// op count (the nightly -race form); COSMOS_SOAK_SEED pins one seed for
// reproduction.
func TestChurnSoak(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	nOps := 150
	if os.Getenv("COSMOS_SOAK_LONG") != "" {
		seeds = seeds[:0]
		for s := uint64(1); s <= 12; s++ {
			seeds = append(seeds, s)
		}
		nOps = 900
	}
	if v := os.Getenv("COSMOS_SOAK_SEED"); v != "" {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad COSMOS_SOAK_SEED %q: %v", v, err)
		}
		seeds = []uint64{s}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSoak(t, seed, nOps, false)
		})
	}
}

// TestChurnSoakFaults is the fault-injected form of the churn soak: the
// same randomized churn runs under a chaos fabric that duplicates and
// reorders control traffic throughout, with broker-crash and link-partition
// windows (each closed through the repair path) interleaved. The oracles
// are unchanged — rebuild equivalence on probe deliveries and
// drain-to-empty — so the test asserts that recovery leaves the overlay
// state-equivalent to a never-faulted build. Quick form by default (PR CI);
// COSMOS_SOAK_FAULTS=1 raises seeds and op count (the nightly -race form);
// COSMOS_SOAK_SEED pins one seed for reproduction.
func TestChurnSoakFaults(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	nOps := 150
	if os.Getenv("COSMOS_SOAK_FAULTS") != "" {
		seeds = seeds[:0]
		for s := uint64(1); s <= 12; s++ {
			seeds = append(seeds, s)
		}
		nOps = 900
	}
	if v := os.Getenv("COSMOS_SOAK_SEED"); v != "" {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad COSMOS_SOAK_SEED %q: %v", v, err)
		}
		seeds = []uint64{s}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSoak(t, seed, nOps, true)
		})
	}
}
