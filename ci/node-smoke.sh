#!/usr/bin/env bash
# node-smoke: boot the deploy/compose three-node overlay as real containers
# and walk the deployment lifecycle end to end — the CI lane proving the
# binary deploys, not just that its packages test green:
#
#   1. build the image and bring up the 0 — 1 — 2 line topology
#   2. every node reports /healthz status=ok; the subscriber reaches
#      ready=true via advert arrival (no sleeps anywhere in this script's
#      success path — every wait polls an observable condition)
#   3. filtered tuples flow end to end (msg=delivery in the subscriber log)
#   4. /metrics serves Prometheus text with live routing counters and
#      /debug/overlay.dot renders the live topology on every node
#   5. SIGTERM the publisher: it logs msg=drained and exits 0, and the
#      survivors' routing state drains to empty (cosmos_adverts_learned 0,
#      cosmos_routing_remote_records 0 — the drain-to-empty invariant,
#      observed over real TCP between processes)
#
# Requirements: docker compose v2 and curl on the host. Set
# NODE_SMOKE_ARTIFACTS to a directory to keep per-node logs (CI uploads
# them on failure). Runs from any cwd; cleans up its containers on exit.
set -euo pipefail

cd "$(dirname "$0")/.."
COMPOSE=(docker compose -f deploy/compose/docker-compose.yml)
ARTIFACTS="${NODE_SMOKE_ARTIFACTS:-}"
NODES=(node0 node1 node2)
PORTS=(18080 18081 18082)

fail() {
  echo "node-smoke: FAIL: $*" >&2
  exit 1
}

cleanup() {
  status=$?
  if [ -n "$ARTIFACTS" ]; then
    mkdir -p "$ARTIFACTS"
    for n in "${NODES[@]}"; do
      "${COMPOSE[@]}" logs --no-color --no-log-prefix "$n" >"$ARTIFACTS/$n.log" 2>&1 || true
    done
  fi
  if [ "$status" -ne 0 ]; then
    echo "--- compose logs at failure ---"
    "${COMPOSE[@]}" logs --no-color --tail 50 || true
  fi
  "${COMPOSE[@]}" down -v --timeout 5 >/dev/null 2>&1 || true
  exit "$status"
}
trap cleanup EXIT

# ops PORT PATH — fetch an ops endpoint; non-2xx (the degraded 503) fails.
ops() {
  curl -fsS --max-time 5 "http://127.0.0.1:$1$2"
}

# wait_for SECONDS WHAT CMD... — poll CMD once a second until it succeeds.
wait_for() {
  local deadline=$(($(date +%s) + $1)) what=$2
  shift 2
  until "$@" >/dev/null 2>&1; do
    if [ "$(date +%s)" -ge "$deadline" ]; then
      fail "timed out waiting for $what"
    fi
    sleep 1
  done
  echo "node-smoke: ok: $what"
}

healthz_ok() { ops "$1" /healthz | grep -q 'status=ok'; }
ready_true() { ops "$1" /healthz | grep -q 'ready=true'; }
delivery_logged() { "${COMPOSE[@]}" logs --no-color node2 | grep -q 'msg=delivery'; }
survivor_drained() {
  local m
  m=$(ops "$1" /metrics)
  grep -qx 'cosmos_adverts_learned 0' <<<"$m" &&
    grep -qx 'cosmos_routing_remote_records 0' <<<"$m"
}

echo "node-smoke: building image"
"${COMPOSE[@]}" build
echo "node-smoke: starting the overlay"
"${COMPOSE[@]}" up -d

# --- liveness and readiness --------------------------------------------
for i in 0 1 2; do
  wait_for 90 "node$i /healthz status=ok" healthz_ok "${PORTS[$i]}"
done
# The subscriber flips ready once Station1's advert flood has arrived —
# the condition the removed startup sleeps used to approximate.
wait_for 60 "subscriber ready=true (advert flood arrived)" ready_true "${PORTS[2]}"

# --- end-to-end filtered delivery --------------------------------------
wait_for 60 "filtered delivery at the subscriber" delivery_logged

# --- metrics and overlay rendering on every node ------------------------
for i in 0 1 2; do
  metrics=$(ops "${PORTS[$i]}" /metrics)
  for name in cosmos_pubsub_routed_tuples cosmos_transport_wire_msgs \
    cosmos_adverts_learned cosmos_routing_remote_records cosmos_node_ready; do
    grep -q "^$name " <<<"$metrics" || fail "node$i /metrics missing $name"
  done
  dot=$(ops "${PORTS[$i]}" /debug/overlay.dot)
  grep -q 'graph cosmos {' <<<"$dot" || fail "node$i overlay.dot is not DOT"
  grep -q "n$i -- " <<<"$dot" || fail "node$i overlay.dot has no edges"
done
echo "node-smoke: ok: /metrics and /debug/overlay.dot on every node"

# The publisher must have routed actual traffic by now.
routed=$(ops "${PORTS[0]}" /metrics | awk '$1 == "cosmos_pubsub_routed_tuples" { print $2 }')
if [ -z "$routed" ] || [ "$routed" -le 0 ]; then
  fail "publisher routed no tuples (cosmos_pubsub_routed_tuples=$routed)"
fi
echo "node-smoke: ok: publisher routed $routed tuples"

# --- graceful drain ------------------------------------------------------
cid=$("${COMPOSE[@]}" ps -q node0)
echo "node-smoke: SIGTERM node0 (graceful drain)"
"${COMPOSE[@]}" kill -s SIGTERM node0
exit_code=$(timeout 30 docker wait "$cid") || fail "node0 did not exit after SIGTERM"
[ "$exit_code" = "0" ] || fail "node0 exited $exit_code after SIGTERM, want 0"
"${COMPOSE[@]}" logs --no-color node0 | grep -q 'msg=drained' ||
  fail "node0 closed without logging a completed drain"
echo "node-smoke: ok: node0 drained and exited 0"

# The survivors must shed every trace of the departed publisher: its
# advert withdrawal prunes their learned adverts AND the remote
# subscription records those adverts justified (the mirror rule). The
# subscriber's own local subscription survives, which is why
# cosmos_routing_local_records is not asserted zero.
for i in 1 2; do
  wait_for 30 "node$i residual routing state drained to empty" survivor_drained "${PORTS[$i]}"
done

echo "node-smoke: PASS"
