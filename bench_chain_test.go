// Transport v2 benchmarks: end-to-end throughput and control-flood cost of
// the per-peer send pipelines over a real loopback-TCP 3-broker chain,
// batched against the v1-framing reference (Options.DisableBatching). The
// two are the same protocol — TestTransportEquivalence proves identical
// delivery — so the whole delta is framing: MsgBatch coalescing, buffer
// reuse, and one flush per batch instead of one syscall per envelope.
package cosmos

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/transport"
)

// benchChain builds a 3-broker loopback-TCP chain 0-1-2 with the given
// pipeline options on every node.
func benchChain(b *testing.B, opts transport.Options) [3]*transport.Node {
	b.Helper()
	var nodes [3]*transport.Node
	for i := range nodes {
		n, err := transport.NewNodeWith(topology.NodeID(i), "127.0.0.1:0", opts)
		if err != nil {
			b.Fatalf("NewNodeWith %d: %v", i, err)
		}
		b.Cleanup(func() { _ = n.Close() }) //lint:errdrop bench teardown is best-effort
		nodes[i] = n
	}
	nodes[0].Connect(1, nodes[1].Addr())
	nodes[1].Connect(0, nodes[0].Addr())
	nodes[1].Connect(2, nodes[2].Addr())
	nodes[2].Connect(1, nodes[1].Addr())
	return nodes
}

func benchWaitChain(b *testing.B, what string, pred func() bool) {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	b.Fatalf("timed out waiting for %s", what)
}

// benchChainData runs the data leg: a windowed publisher at node 0, a sink
// subscription at node 2, every published tuple delivered end to end.
func benchChainData(b *testing.B, opts transport.Options) {
	nodes := benchChain(b, opts)
	nodes[0].Broker.Advertise("R")
	var delivered atomic.Int64
	sub := &pubsub.Subscription{ID: "sink", Streams: []string{"R"}}
	if err := nodes[2].Broker.Subscribe(sub, func(*pubsub.Subscription, stream.Tuple) {
		delivered.Add(1)
	}); err != nil {
		b.Fatal(err)
	}
	benchWaitChain(b, "subscription at source", func() bool {
		remote, _ := nodes[0].Broker.RoutingStateSize()
		return remote == 1
	})

	snap := metrics.Counters()
	batchSize0 := snap["transport.batch_size"]
	dropped0 := snap["transport.dropped_data"]

	// In-flight window under the 4096 data queue bound: the pipeline
	// stays busy (batches fill without waiting out the flush window) but
	// nothing is shed.
	const window = 1024
	tpl := stream.Tuple{Stream: "R", Size: 24,
		Attrs: map[string]stream.Value{"a": stream.FloatVal(1)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for int64(i)-delivered.Load() >= window {
			time.Sleep(50 * time.Microsecond)
		}
		tpl.Timestamp = int64(i)
		nodes[0].Broker.Publish(tpl)
	}
	benchWaitChain(b, "all tuples delivered", func() bool {
		return delivered.Load() == int64(b.N)
	})
	b.StopTimer()

	snap = metrics.Counters()
	if got := snap["transport.dropped_data"] - dropped0; got != 0 {
		b.Fatalf("%d tuples shed — the windowed bench must be loss-free", got)
	}
	if !opts.DisableBatching && b.N > window {
		if snap["transport.batch_size"] == batchSize0 {
			b.Fatal("batched run coalesced nothing — transport.batch_size never moved")
		}
		if snap["transport.queue_depth"] == 0 {
			b.Fatal("transport.queue_depth high-water never recorded")
		}
	}
	b.ReportMetric(float64(delivered.Load())*1e9/float64(b.Elapsed().Nanoseconds()), "tuples/sec")
}

// BenchmarkChainThroughput/data/*: tuples routed node 0 → 1 → 2 end to end
// (two TCP hops), ns/op = per-tuple latency at full pipeline occupancy, so
// 1e9/ns_per_op is tuples/sec. The publisher keeps a bounded in-flight
// window (below the data queue depth) — every published tuple is delivered,
// and the batched/unbatched comparison measures framing, not loss.
//
// /advertflood/*: one iteration floods an advertisement into a broker
// holding 1000 pending subscriptions and waits for the full replay burst
// (1000 subscriptions per hop) to land back at the source, then withdraws
// it again — the control-plane storm of a source joining a populated
// overlay. Batching collapses the burst's wire messages by ~BatchSize.
func BenchmarkChainThroughput(b *testing.B) {
	modes := []struct {
		name string
		opts transport.Options
	}{
		{"batched", transport.Options{}},
		{"unbatched", transport.Options{DisableBatching: true}},
	}

	b.Run("data", func(b *testing.B) {
		for _, m := range modes {
			b.Run(m.name, func(b *testing.B) { benchChainData(b, m.opts) })
		}
	})

	b.Run("sweep", func(b *testing.B) {
		// The batch-size / flush-window sweep behind PERF.md's "Transport
		// v2" tables. Env-gated like the ScaleMedium Fig 6 sweep: it is a
		// tuning record, not a regression guard, and would multiply the
		// bench lane's wall time.
		if os.Getenv("COSMOS_BENCH_SWEEP") == "" {
			b.Skip("set COSMOS_BENCH_SWEEP=1 to run the PERF.md tuning sweep")
		}
		for _, bs := range []int{8, 16, 64, 256} {
			b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
				benchChainData(b, transport.Options{BatchSize: bs})
			})
		}
		for _, fw := range []time.Duration{-1, 200 * time.Microsecond, 1 * time.Millisecond, 5 * time.Millisecond} {
			b.Run(fmt.Sprintf("window=%s", fw), func(b *testing.B) {
				benchChainData(b, transport.Options{FlushWindow: fw})
			})
		}
	})

	b.Run("advertflood", func(b *testing.B) {
		for _, m := range modes {
			b.Run(m.name, func(b *testing.B) {
				nodes := benchChain(b, m.opts)
				// 1000 pending subscriptions on non-overlapping attributes
				// (no containment: the full burst must travel every hop).
				const nSubs = 1000
				for i := 0; i < nSubs; i++ {
					lit := stream.FloatVal(float64(i))
					sub := &pubsub.Subscription{
						ID: fmt.Sprintf("s%d", i), Streams: []string{"R"},
						Filters: []query.Predicate{{
							Left:  query.Operand{Col: &query.ColRef{Attr: fmt.Sprintf("a%d", i)}},
							Op:    query.Ge,
							Right: query.Operand{Lit: &lit},
						}},
					}
					if err := nodes[2].Broker.Subscribe(sub, func(*pubsub.Subscription, stream.Tuple) {}); err != nil {
						b.Fatal(err)
					}
				}
				wire0 := metrics.Counters()["transport.wire_msgs"]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nodes[0].Broker.Advertise("R")
					benchWaitChain(b, "replay burst at source", func() bool {
						remote, _ := nodes[0].Broker.RoutingStateSize()
						return remote == nSubs
					})
					nodes[0].Broker.Unadvertise("R")
					benchWaitChain(b, "withdrawal pruned", func() bool {
						remote, _ := nodes[0].Broker.RoutingStateSize()
						return remote == 0
					})
				}
				b.StopTimer()
				wire := metrics.Counters()["transport.wire_msgs"] - wire0
				b.ReportMetric(float64(wire)/float64(b.N), "wire_msgs/flood")
			})
		}
	})
}
